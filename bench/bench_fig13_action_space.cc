/// \file
/// Figure 13: flat vs hierarchical action spaces. The hierarchical actor
/// (rule network + location network) should learn faster and reach higher
/// mean episode returns than a flat actor over rule x location pairs,
/// whose output head is ~16x wider.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "common.h"
#include "support/csv.h"

namespace {

chehab::benchcommon::Harness&
harness()
{
    static chehab::benchcommon::Harness instance;
    return instance;
}

void
BM_PolicySample(benchmark::State& state)
{
    auto& h = harness();
    chehab::rl::AgentConfig config = h.agentConfig();
    config.policy.hierarchical = state.range(0) == 1;
    chehab::rl::RlAgent agent(h.ruleset(), config);
    chehab::rl::RewriteEnv env(h.ruleset(), config.env);
    env.reset(chehab::benchsuite::dotProduct(8).program);
    const chehab::rl::IciTokenEncoder encoder;
    const std::vector<int> ids = encoder.encode(env.program(), 96);
    chehab::Rng rng(3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            agent.policy().sample(ids, env.matchCounts(), rng));
    }
}
BENCHMARK(BM_PolicySample)->Arg(1)->Arg(0)->Iterations(8);

} // namespace

int
main(int argc, char** argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    auto& h = harness();
    const int steps = std::max(768, h.budget().train_steps);
    const std::vector<chehab::ir::ExprPtr> corpus = h.motifDataset(256);

    auto train = [&](bool hierarchical) {
        chehab::rl::AgentConfig config = h.agentConfig();
        config.policy.hierarchical = hierarchical;
        config.ppo.total_timesteps = steps;
        chehab::rl::RlAgent agent(h.ruleset(), config);
        std::fprintf(stderr, "[bench] training %s action space...\n",
                     hierarchical ? "hierarchical" : "flat");
        return agent.train(corpus);
    };

    const chehab::rl::TrainStats hier = train(true);
    const chehab::rl::TrainStats flat = train(false);

    std::printf("\n=== Fig. 13 — mean episode return over timesteps ===\n");
    std::printf("%10s %14s %14s\n", "timesteps", "hierarchical", "flat");
    const std::size_t n =
        std::min(hier.mean_return_curve.size(),
                 flat.mean_return_curve.size());
    for (std::size_t i = 0; i < n; ++i) {
        std::printf("%10d %14.2f %14.2f\n", hier.timestep_curve[i],
                    hier.mean_return_curve[i], flat.mean_return_curve[i]);
    }
    const double hier_final =
        hier.mean_return_curve.empty() ? 0 : hier.mean_return_curve.back();
    const double flat_final =
        flat.mean_return_curve.empty() ? 0 : flat.mean_return_curve.back();
    std::printf("\nfinal mean return: hierarchical %.2f vs flat %.2f "
                "(paper: hierarchical consistently higher)\n",
                hier_final, flat_final);

    std::filesystem::create_directories("results");
    chehab::CsvWriter csv("results/fig13_action_space.csv",
                          {"timesteps", "hierarchical_return",
                           "flat_return"});
    for (std::size_t i = 0; i < n; ++i) {
        csv.writeRow(hier.timestep_curve[i], hier.mean_return_curve[i],
                     flat.mean_return_curve[i]);
    }
    std::printf("[bench] wrote results/fig13_action_space.csv\n");
    return 0;
}
