/// \file
/// Figure 11 / Table 7: GRU vs Transformer program autoencoders. Both
/// encoders compress an ICI token sequence into one fixed-length
/// embedding; an identical position-conditioned MLP decoder reconstructs
/// the tokens. The paper's Transformer reaches 100% exact-match
/// reconstruction while the GRU plateaus at 98.9% with ordering errors —
/// the evidence for choosing the Transformer state encoder (App. I.1).
#include <benchmark/benchmark.h>

#include <filesystem>

#include "common.h"
#include "support/csv.h"
#include "nn/adam.h"
#include "nn/layers.h"
#include "tokenizer/ici.h"

namespace {

using chehab::nn::Tensor;

constexpr int kMaxLen = 24;

struct Autoencoder
{
    chehab::nn::EncoderConfig config;
    chehab::nn::TransformerEncoder transformer;
    chehab::nn::GruEncoder gru;
    bool use_gru = false;
    Tensor decoder_pos; ///< Learned per-position embedding.
    chehab::nn::Mlp decoder;

    Autoencoder(bool gru_encoder, int vocab, chehab::Rng& rng)
    {
        config.vocab_size = vocab;
        config.d_model = 32;
        config.n_layers = 2;
        config.n_heads = 4;
        config.d_ff = 64;
        config.max_len = kMaxLen;
        use_gru = gru_encoder;
        if (use_gru) {
            gru = chehab::nn::GruEncoder(config, rng);
        } else {
            transformer = chehab::nn::TransformerEncoder(config, rng);
        }
        decoder_pos = Tensor::randn(kMaxLen, 16, rng, 0.3f, true);
        decoder = chehab::nn::Mlp({config.d_model + 16, 64, vocab}, rng);
    }

    Tensor encode(const std::vector<int>& ids) const
    {
        return use_gru ? gru.encode(ids) : transformer.encode(ids);
    }

    /// Per-position token log-probs given the sequence embedding.
    Tensor logits(const Tensor& embedding, int position) const
    {
        const Tensor pos = chehab::nn::sliceRow(decoder_pos, position);
        return decoder.forward(chehab::nn::concatCols(embedding, pos));
    }

    std::vector<Tensor> params() const
    {
        std::vector<Tensor> params;
        if (use_gru) {
            gru.collectParams(params);
        } else {
            transformer.collectParams(params);
        }
        params.push_back(decoder_pos);
        decoder.collectParams(params);
        return params;
    }
};

struct EvalResult
{
    double exact = 0.0;
    double token = 0.0;
};

EvalResult
evaluate(const Autoencoder& model,
         const std::vector<std::vector<int>>& sequences)
{
    long long exact = 0;
    long long token_hits = 0;
    long long token_total = 0;
    for (const auto& ids : sequences) {
        const Tensor embedding = model.encode(ids);
        bool all_match = true;
        for (int pos = 0; pos < kMaxLen; ++pos) {
            if (ids[static_cast<std::size_t>(pos)] == 0) break; // PAD.
            const Tensor logit = model.logits(embedding, pos);
            int best = 0;
            for (int v = 1; v < logit.cols(); ++v) {
                if (logit.at(0, v) > logit.at(0, best)) best = v;
            }
            ++token_total;
            if (best == ids[static_cast<std::size_t>(pos)]) {
                ++token_hits;
            } else {
                all_match = false;
            }
        }
        exact += all_match;
    }
    return {100.0 * exact / sequences.size(),
            100.0 * token_hits / std::max<long long>(1, token_total)};
}

void
BM_TransformerEncode(benchmark::State& state)
{
    chehab::Rng rng(1);
    const chehab::tokenizer::IciVocab vocab;
    const Autoencoder model(false, vocab.size(), rng);
    const std::vector<int> ids =
        vocab.encode(chehab::benchsuite::dotProduct(4).program, kMaxLen);
    for (auto _ : state) benchmark::DoNotOptimize(model.encode(ids));
}
BENCHMARK(BM_TransformerEncode);

void
BM_GruEncode(benchmark::State& state)
{
    chehab::Rng rng(1);
    const chehab::tokenizer::IciVocab vocab;
    const Autoencoder model(true, vocab.size(), rng);
    const std::vector<int> ids =
        vocab.encode(chehab::benchsuite::dotProduct(4).program, kMaxLen);
    for (auto _ : state) benchmark::DoNotOptimize(model.encode(ids));
}
BENCHMARK(BM_GruEncode);

} // namespace

int
main(int argc, char** argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    chehab::benchcommon::Harness h;
    const chehab::tokenizer::IciVocab vocab;

    // Short random IR expressions (the corpus regime of App. I.1).
    chehab::dataset::RandomGenConfig gen_config;
    gen_config.max_depth = 3;
    gen_config.max_width = 2;
    chehab::dataset::RandomProgramGenerator gen(31, gen_config);
    std::vector<std::vector<int>> train_seqs;
    std::vector<std::vector<int>> test_seqs;
    for (int i = 0; i < 48; ++i) {
        train_seqs.push_back(vocab.encode(gen.generate(), kMaxLen));
    }
    for (int i = 0; i < 24; ++i) {
        test_seqs.push_back(vocab.encode(gen.generate(), kMaxLen));
    }

    const int epochs = h.budget().fast ? 20 : 40;
    auto train = [&](bool use_gru, const char* label) {
        chehab::Rng rng(77);
        Autoencoder model(use_gru, vocab.size(), rng);
        chehab::nn::AdamConfig adam_config;
        adam_config.learning_rate = 3e-3f;
        chehab::nn::Adam adam(model.params(), adam_config);
        std::fprintf(stderr, "[bench] training %s autoencoder...\n", label);
        for (int epoch = 0; epoch < epochs; ++epoch) {
            for (const auto& ids : train_seqs) {
                const Tensor embedding = model.encode(ids);
                Tensor loss;
                for (int pos = 0; pos < kMaxLen; ++pos) {
                    const int target = ids[static_cast<std::size_t>(pos)];
                    if (target == 0) break;
                    const Tensor nll = chehab::nn::scale(
                        chehab::nn::pick(
                            chehab::nn::logSoftmaxRows(
                                model.logits(embedding, pos)),
                            0, target),
                        -1.0f);
                    loss = loss.defined() ? chehab::nn::add(loss, nll)
                                          : nll;
                }
                loss.backward();
                adam.step();
            }
        }
        return model;
    };

    const Autoencoder transformer = train(false, "Transformer");
    const Autoencoder gru = train(true, "GRU");

    const EvalResult t_train = evaluate(transformer, train_seqs);
    const EvalResult t_test = evaluate(transformer, test_seqs);
    const EvalResult g_train = evaluate(gru, train_seqs);
    const EvalResult g_test = evaluate(gru, test_seqs);

    std::printf("\n=== Table 7 — autoencoder reconstruction accuracy ===\n");
    std::printf("%-14s %10s %10s %10s %10s\n", "model", "tr-exact",
                "tr-token", "te-exact", "te-token");
    std::printf("%-14s %9.1f%% %9.1f%% %9.1f%% %9.1f%%\n", "Transformer",
                t_train.exact, t_train.token, t_test.exact, t_test.token);
    std::printf("%-14s %9.1f%% %9.1f%% %9.1f%% %9.1f%%\n", "GRU",
                g_train.exact, g_train.token, g_test.exact, g_test.token);
    std::printf("(paper: Transformer 100%% exact vs GRU 98.9%% with "
                "ordering errors)\n");

    std::filesystem::create_directories("results");
    chehab::CsvWriter csv("results/fig11_autoencoder.csv",
                          {"model", "train_exact", "train_token",
                           "test_exact", "test_token"});
    csv.writeRow("Transformer", t_train.exact, t_train.token, t_test.exact,
                 t_test.token);
    csv.writeRow("GRU", g_train.exact, g_train.token, g_test.exact,
                 g_test.token);
    std::printf("[bench] wrote results/fig11_autoencoder.csv\n");
    return 0;
}
