/// \file
/// Timer-augmented load model throughput benchmark: jobs/sec on a
/// *skewed* kernel mix — a few heavy kernels buried in many light ones
/// — with the full adaptive scheduler (measured-EWMA LPT dispatch,
/// cost-driven consolidation, arrival-rate-adaptive batch windows)
/// against the static baseline (static-cost LPT, stride-FFD
/// consolidation, fixed windows), at each lane cap.
///
/// The skew is the point: with uniform costs any order and any row
/// assignment works. Once a handful of kernels dominate the wall
/// time, the static scheduler (a) bin-packs by stride alone, happily
/// serializing two heavy kernels onto one shared row while workers
/// idle, and (b) sits out the full fixed window even when the arrival
/// burst is long over. The load model prices both decisions in
/// measured seconds: heavy (execution-dominated) groups get their own
/// rows while workers are free, light (overhead-dominated) groups
/// keep sharing, and groups flush as soon as the arrival-rate
/// estimate says no more peers are coming.
///
/// Each configuration runs warmup rounds first (compiles cached,
/// EWMA profiles and arrival estimators trained), then measures
/// repeated rounds of the same batch with distinct inputs per round
/// (so rounds coalesce instead of hitting the run cache).
/// Correctness gate: every response's outputs are checked against the
/// plaintext evaluator — packed/composite outputs stay bit-identical
/// to solo under every scheduler.
///
/// Usage:
///   bench_load_model [LANES...]   lane caps to sweep (default 1 8 16;
///                                 1 = batching off)
///
/// Environment knobs (see bench/common.h):
///   CHEHAB_BENCH_FAST=1     smaller batch and rewrite budget
///   CHEHAB_BENCH_TRACE=PATH write a Chrome trace-event JSON of the
///                           adaptive sweep at the last lane cap
///                           (nightly CI uploads it as an artifact)
///
/// Writes results/load_model.csv — including the per-phase latency
/// percentile columns (qwait/exec p50/p99, window-wait p99) from the
/// service's telemetry histograms — and prints a summary table with
/// the adaptive-over-static speedup per lane cap. Telemetry is on for
/// every sweep; its overhead is part of what this bench keeps honest
/// (the recorder must stay invisible next to FHE execution).
#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "benchsuite/kernels.h"
#include "common.h"
#include "ir/evaluator.h"
#include "service/compile_service.h"
#include "support/csv.h"
#include "support/parse_int.h"
#include "support/stopwatch.h"

namespace {

using namespace chehab;

service::RunRequest
makeRequest(const benchsuite::Kernel& kernel, int index, int round,
            int max_steps)
{
    service::RunRequest request;
    request.name = kernel.name + "#" + std::to_string(index) + "." +
                   std::to_string(round);
    request.source = kernel.program;
    request.pipeline = compiler::DriverConfig::greedy({}, max_steps);
    request.params.n = 128; // 64-slot row: toy-sized small kernels.
    request.params.prime_count = 4;
    request.params.seed = 17;
    request.inputs = benchsuite::syntheticInputs(kernel.program);
    // Distinct inputs per request AND per round: identical requests
    // would collapse in the run cache instead of exercising the
    // scheduler. Kept small so reduction kernels stay far from the
    // plaintext modulus.
    for (auto& [name, value] : request.inputs) {
        value += ((index * 3 + round * 7 + 1) % 9 + 9) % 9;
    }
    request.key_budget = 0;
    return request;
}

struct Outcome
{
    double wall_seconds = 0.0;
    double jobs_per_second = 0.0;
    int wrong_outputs = 0;
    service::ServiceStats stats;
};

/// Run \p rounds measured rounds of \p round_jobs requests on one
/// service configured with \p adaptive scheduling on or off.
Outcome
runSweep(const std::vector<benchsuite::Kernel>& mix, int requests_per_kernel,
         int lanes, bool adaptive, int workers, int warmup_rounds,
         int rounds, int max_steps, const std::string& trace_path)
{
    service::ServiceConfig config;
    config.num_workers = workers;
    config.max_lanes = lanes;
    // Always on: the percentile columns come from here, and running the
    // throughput measurement with the recorder live is the regression
    // gate on its overhead.
    config.telemetry = true;
    // A service-shaped safety window (tens of ms — sized so a late
    // straggler can still catch its row): the fixed-window baseline
    // sits it out on every partial group; the adaptive scheduler
    // flushes as soon as the arrival-rate estimate says the burst is
    // over, which is what makes a generous ceiling affordable.
    config.batch_window_seconds = 0.05;
    config.cross_kernel = lanes != 1;
    config.adaptive_window = adaptive;
    config.load_model.enabled = adaptive;
    // Closed-loop rounds give few arrivals per group key; let the
    // estimator reach confidence within the warmup budget, and keep a
    // floor generous enough that submission-time compile/canonicalize
    // stagger does not split lane pairs (a quarter of the ceiling still
    // returns three quarters of every fixed-window wait).
    config.load_model.min_arrival_samples = 3;
    config.load_model.window_floor_fraction = 0.125;
    service::CompileService service(config);

    auto makeRound = [&](int round) {
        std::vector<service::RunRequest> batch;
        int index = 0;
        for (const benchsuite::Kernel& kernel : mix) {
            for (int r = 0; r < requests_per_kernel; ++r) {
                batch.push_back(
                    makeRequest(kernel, index++, round, max_steps));
            }
        }
        return batch;
    };

    // Concurrent clients: several submitter threads, each owning a
    // contiguous slice of the round (a kernel's requests stay on one
    // client, as one tenant's burst would). Serializing submission on
    // one thread would hide the fixed window behind the caller's own
    // canonicalize time.
    const int clients = 4;
    const auto submitSlice = [&service](
                                 std::vector<service::RunRequest> slice,
                                 int* failures) {
        std::vector<std::future<service::RunResponse>> futures;
        futures.reserve(slice.size());
        for (service::RunRequest& request : slice) {
            futures.push_back(service.submitRun(std::move(request)));
        }
        for (auto& future : futures) {
            const service::RunResponse response = future.get();
            if (!response.ok) {
                std::fprintf(stderr, "[bench] %s FAILED: %s\n",
                             response.name.c_str(),
                             response.error.c_str());
                ++*failures;
            }
        }
    };
    const auto runRound = [&](std::vector<service::RunRequest> batch,
                              int* failures) {
        const std::size_t per_client =
            (batch.size() + clients - 1) / clients;
        std::vector<std::thread> threads;
        std::vector<int> slice_failures(clients, 0);
        for (int c = 0; c < clients; ++c) {
            const std::size_t begin =
                std::min(static_cast<std::size_t>(c) * per_client,
                         batch.size());
            const std::size_t end =
                std::min(begin + per_client, batch.size());
            std::vector<service::RunRequest> slice(
                std::make_move_iterator(batch.begin() +
                                        static_cast<std::ptrdiff_t>(begin)),
                std::make_move_iterator(batch.begin() +
                                        static_cast<std::ptrdiff_t>(end)));
            threads.emplace_back(submitSlice, std::move(slice),
                                 &slice_failures[static_cast<std::size_t>(
                                     c)]);
        }
        for (std::thread& thread : threads) thread.join();
        for (int f : slice_failures) *failures += f;
    };

    // Warmup: caches the compiles for both configurations and — for
    // the adaptive one — trains the EWMA profiles and arrival
    // estimators the scheduler dispatches on, under the same client
    // concurrency the measurement uses.
    Outcome outcome;
    for (int w = 0; w < warmup_rounds; ++w) {
        int ignored = 0;
        runRound(makeRound(-1 - w), &ignored);
    }

    int jobs = 0;
    const Stopwatch wall;
    for (int round = 0; round < rounds; ++round) {
        std::vector<service::RunRequest> batch = makeRound(round);
        jobs += static_cast<int>(batch.size());
        runRound(std::move(batch), &outcome.wrong_outputs);
    }
    outcome.wall_seconds = wall.elapsedSeconds();
    outcome.jobs_per_second =
        static_cast<double>(jobs) / outcome.wall_seconds;
    // Let the final tasks' telemetry epilogues land before snapshotting
    // (futures resolve from inside worker tasks); the wall clock above
    // intentionally stops at response availability.
    service.drain();
    outcome.stats = service.stats();

    // Correctness gate on a final round: packed/composite outputs must
    // equal the plaintext evaluator's solo semantics — modulo the
    // plaintext modulus, which is what the scheme computes in —
    // whatever the scheduler decided.
    std::vector<service::RunRequest> check = makeRound(rounds);
    std::vector<service::RunRequest> reference = check;
    std::vector<service::RunResponse> responses =
        service.runBatch(std::move(check));
    const auto norm = [](std::int64_t v, std::int64_t t) {
        return ((v % t) + t) % t;
    };
    for (std::size_t i = 0; i < responses.size(); ++i) {
        if (!responses[i].ok) {
            ++outcome.wrong_outputs;
            continue;
        }
        const auto t = static_cast<std::int64_t>(
            reference[i].params.plain_modulus);
        const ir::Value expected = ir::Evaluator().evaluate(
            reference[i].source, reference[i].inputs);
        const std::vector<std::int64_t>& got = responses[i].result.output;
        // Scalar sources may be vectorized by the TRS (rotate-reduce):
        // slot 0 carries the semantic result either way; vector sources
        // compare the full width (mirrors the service execute tests).
        bool same = !got.empty();
        if (same && expected.is_vector) {
            same = got.size() == expected.slots.size();
            for (std::size_t s = 0; s < got.size() && same; ++s) {
                same = norm(got[s], t) == norm(expected.slots[s], t);
            }
        } else if (same) {
            same = norm(got[0], t) == norm(expected.slots[0], t);
        }
        if (!same) {
            ++outcome.wrong_outputs;
            std::fprintf(stderr, "[bench] %s OUTPUT MISMATCH\n",
                         responses[i].name.c_str());
        }
    }
    if (!trace_path.empty()) {
        service.drain();
        std::ofstream trace(trace_path);
        if (trace) {
            service.telemetry().writeChromeTrace(trace);
            std::printf("[bench] wrote %s\n", trace_path.c_str());
        } else {
            std::fprintf(stderr, "[bench] cannot write %s\n",
                         trace_path.c_str());
        }
    }
    return outcome;
}

} // namespace

int
main(int argc, char** argv)
{
    const benchcommon::Budget budget = benchcommon::budgetFromEnv();
    const int max_steps = budget.fast ? 8 : 20;
    const int requests_per_kernel = 2;
    const int workers = 8;
    const int warmup_rounds = 4;
    const int rounds = budget.fast ? 3 : 5;

    std::vector<int> lane_caps;
    for (int i = 1; i < argc; ++i) {
        int lanes = 0;
        if (!parseInt(argv[i], lanes) || lanes < 0) {
            std::fprintf(stderr,
                         "bench_load_model: bad lane count '%s'\n",
                         argv[i]);
            return 2;
        }
        lane_caps.push_back(lanes);
    }
    if (lane_caps.empty()) lane_caps = {1, 8, 16};

    // The skewed 16-kernel mix: 4 heavy kernels (wide reductions —
    // long instruction streams, multi-step rotation plans, execution
    // times an order of magnitude above the rest) buried in 12 light
    // ones. All are lane-safe on the 128-slot row, so every scheduling
    // decision — order, row assignment, window — is the difference
    // under measurement.
    std::vector<benchsuite::Kernel> mix = {
        // Heavy tail.
        benchsuite::dotProduct(32),     benchsuite::l2Distance(32),
        benchsuite::polyReg(16),        benchsuite::hammingDistance(32),
        // Light body.
        benchsuite::dotProduct(2),      benchsuite::polyReg(2),
        benchsuite::l2Distance(2),      benchsuite::linearReg(2),
        benchsuite::hammingDistance(2), benchsuite::dotProduct(4),
        benchsuite::polyReg(4),         benchsuite::l2Distance(4),
        benchsuite::linearReg(4),       benchsuite::hammingDistance(4),
        benchsuite::dotProduct(8),      benchsuite::linearReg(8)};
    if (budget.fast) mix.resize(8); // Keeps the 4-heavy/4-light skew.

    const char* trace_env = std::getenv("CHEHAB_BENCH_TRACE");
    const std::string trace_path = trace_env ? trace_env : "";

    std::filesystem::create_directories("results");
    std::vector<std::string> header = {
        "lanes",           "scheduler",        "jobs_per_sec",
        "wall_s",          "packed_groups",    "packed_lanes",
        "composite_groups", "solo_runs",       "packed_fallbacks",
        "window_flushes",  "window_shrinks",   "warm_predictions",
        "cold_predictions", "share_preferred", "solo_preferred",
        "wrong_outputs",   "speedup_vs_static"};
    benchcommon::appendLatencyColumns(header);
    CsvWriter csv("results/load_model.csv", header);

    std::printf("bench_load_model: %zu kernels x %d requests x %d "
                "rounds on %d workers (max_steps=%d)\n\n",
                mix.size(), requests_per_kernel, rounds, workers,
                max_steps);
    std::printf("%5s  %22s  %22s  %8s\n", "lanes",
                "static jobs/s (LPT+FFD)", "adaptive jobs/s (model)",
                "speedup");

    bool correct = true;
    for (int lanes : lane_caps) {
        // The trace artifact (when requested) captures the adaptive
        // sweep at the last lane cap — the configuration the nightly
        // wants a span-level look at.
        const bool trace_this =
            !trace_path.empty() && lanes == lane_caps.back();
        const Outcome fixed =
            runSweep(mix, requests_per_kernel, lanes, /*adaptive=*/false,
                     workers, warmup_rounds, rounds, max_steps, "");
        const Outcome adaptive =
            runSweep(mix, requests_per_kernel, lanes, /*adaptive=*/true,
                     workers, warmup_rounds, rounds, max_steps,
                     trace_this ? trace_path : "");
        const double speedup =
            fixed.jobs_per_second > 0.0
                ? adaptive.jobs_per_second / fixed.jobs_per_second
                : 0.0;
        correct = correct && fixed.wrong_outputs == 0 &&
                  adaptive.wrong_outputs == 0;
        std::printf("%5d  %22.1f  %22.1f  %7.2fx\n", lanes,
                    fixed.jobs_per_second, adaptive.jobs_per_second,
                    speedup);
        const auto latencyLine = [](const char* name,
                                    const Outcome& outcome) {
            const benchcommon::LatencySummary lat =
                benchcommon::latencySummary(outcome.stats.telemetry);
            std::printf("       [%s] qwait p50/p99 %.2f/%.2f ms, "
                        "exec p50/p99 %.2f/%.2f ms, window p99 %.2f ms\n",
                        name, lat.qwait_p50 * 1e3, lat.qwait_p99 * 1e3,
                        lat.exec_p50 * 1e3, lat.exec_p99 * 1e3,
                        lat.window_wait_p99 * 1e3);
        };
        latencyLine("static  ", fixed);
        latencyLine("adaptive", adaptive);
        const auto writeRow = [&](const char* name,
                                  const Outcome& outcome,
                                  double vs_static) {
            const benchcommon::LatencySummary lat =
                benchcommon::latencySummary(outcome.stats.telemetry);
            csv.writeRow(
                lanes, name, outcome.jobs_per_second,
                outcome.wall_seconds, outcome.stats.packed_groups,
                outcome.stats.packed_lanes,
                outcome.stats.composite_groups, outcome.stats.solo_runs,
                outcome.stats.packed_fallbacks,
                outcome.stats.window_flushes,
                outcome.stats.load_model.window_shrinks,
                outcome.stats.load_model.warm_predictions,
                outcome.stats.load_model.cold_predictions,
                outcome.stats.load_model.share_preferred,
                outcome.stats.load_model.solo_preferred,
                outcome.wrong_outputs, vs_static, lat.qwait_p50,
                lat.qwait_p99, lat.compile_p50, lat.compile_p99,
                lat.exec_p50, lat.exec_p99, lat.window_wait_p99);
        };
        writeRow("static", fixed, 1.0);
        writeRow("adaptive", adaptive, speedup);
    }
    std::printf("\nwrote results/load_model.csv\n");
    if (!correct) {
        std::fprintf(stderr,
                     "bench_load_model: OUTPUT MISMATCHES DETECTED\n");
        return 1;
    }
    return 0;
}
