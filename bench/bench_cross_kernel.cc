/// \file
/// Cross-kernel packing throughput benchmark: jobs/sec for a mixed
/// batch of small *distinct* kernels (the shape a multi-tenant fleet
/// produces — many models, few concurrent requests each) as the lane
/// cap sweeps from 1 (solo execution) toward the full row, with
/// cross-kernel composition on and off at each cap.
///
/// Per-artifact batching (PR 3) only packs requests that share one
/// compiled kernel, so a mixed workload fragments into per-kernel
/// groups that mostly flush by window timeout half-empty. Cross-kernel
/// packing concatenates the distinct programs onto disjoint lane
/// blocks of one row, sharing the runtime lease, the merged Galois
/// keygen and the dispatch across kernels.
///
/// Usage:
///   bench_cross_kernel [LANES...]    lane caps to sweep (default
///                                    1 2 4 8 16; 1 = batching off)
///
/// Environment knobs (see bench/common.h):
///   CHEHAB_BENCH_FAST=1    smaller batch and rewrite budget
///
/// Writes results/cross_kernel.csv and prints a summary table with the
/// speedup over the lanes=1 baseline.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "benchsuite/kernels.h"
#include "common.h"
#include "service/compile_service.h"
#include "support/csv.h"
#include "support/parse_int.h"
#include "support/stopwatch.h"

namespace {

using namespace chehab;

service::RunRequest
makeRequest(const benchsuite::Kernel& kernel, int index, int max_steps)
{
    service::RunRequest request;
    request.name = kernel.name + "#" + std::to_string(index);
    request.source = kernel.program;
    request.pipeline = compiler::DriverConfig::greedy({}, max_steps);
    request.params.n = 256; // 128-slot row.
    request.params.prime_count = 4;
    request.params.seed = 17;
    request.inputs = benchsuite::syntheticInputs(kernel.program);
    // Distinct inputs per request: identical requests would collapse in
    // the run cache instead of exercising the coalescer.
    for (auto& [name, value] : request.inputs) value += index * 3 + 1;
    request.key_budget = 0;
    return request;
}

struct Outcome
{
    double wall_seconds = 0.0;
    double jobs_per_second = 0.0;
    service::ServiceStats stats;
};

Outcome
runSweep(const std::vector<service::RunRequest>& batch, int lanes,
         bool cross, int workers)
{
    service::ServiceConfig config;
    config.num_workers = workers;
    config.max_lanes = lanes;
    config.batch_window_seconds = 0.002;
    config.cross_kernel = cross;
    // The latency percentile columns come from the service's telemetry
    // histograms; the recorder runs inside the measured region, so its
    // (near-zero) overhead is priced into jobs/s.
    config.telemetry = true;
    service::CompileService service(config);
    // Warm the kernel cache first: this bench measures *execution*
    // throughput (the compile stage is identical across configurations
    // and bench_service_throughput already measures it); cold compiles
    // would both dilute the packing speedup and stagger the runs'
    // arrival at the coalescer.
    {
        std::vector<service::CompileRequest> warm;
        for (const service::RunRequest& request : batch) {
            service::CompileRequest compile;
            compile.name = request.name;
            compile.source = request.source;
            compile.pipeline = request.pipeline;
            warm.push_back(std::move(compile));
        }
        service.compileBatch(std::move(warm));
    }
    std::vector<service::RunRequest> jobs = batch;
    const Stopwatch wall;
    std::vector<service::RunResponse> responses =
        service.runBatch(std::move(jobs));
    Outcome outcome;
    outcome.wall_seconds = wall.elapsedSeconds();
    outcome.jobs_per_second =
        static_cast<double>(batch.size()) / outcome.wall_seconds;
    // Wait for the final tasks' telemetry epilogues (futures resolve
    // from inside worker tasks) so the histogram snapshot is complete.
    service.drain();
    outcome.stats = service.stats();
    for (const service::RunResponse& response : responses) {
        if (!response.ok) {
            std::fprintf(stderr, "[bench] %s FAILED: %s\n",
                         response.name.c_str(), response.error.c_str());
        }
    }
    return outcome;
}

} // namespace

int
main(int argc, char** argv)
{
    const benchcommon::Budget budget = benchcommon::budgetFromEnv();
    const int max_steps = budget.fast ? 8 : 20;
    const int jobs = budget.fast ? 16 : 32;
    const int workers = 4;

    std::vector<int> lane_caps;
    for (int i = 1; i < argc; ++i) {
        int lanes = 0;
        if (!parseInt(argv[i], lanes) || lanes < 0) {
            std::fprintf(stderr,
                         "bench_cross_kernel: bad lane count '%s'\n",
                         argv[i]);
            return 2;
        }
        lane_caps.push_back(lanes);
    }
    if (lane_caps.empty()) lane_caps = {1, 2, 4, 8, 16};

    // Two batch shapes over distinct coalescible kernels with
    // heterogeneous certified strides (2 to 16 slots on the 128-slot
    // row). "mix8" round-robins jobs over 8 kernels — each artifact
    // musters a handful of peers, so per-artifact groups flush
    // half-empty; "mix16" spreads the same jobs over 16 kernels — the
    // multi-tenant extreme where per-artifact packing barely pairs two
    // requests and cross-kernel composition carries the row sharing.
    const std::vector<benchsuite::Kernel> mix8 = {
        benchsuite::dotProduct(4),      benchsuite::polyReg(4),
        benchsuite::l2Distance(4),      benchsuite::linearReg(4),
        benchsuite::dotProduct(8),      benchsuite::hammingDistance(4),
        benchsuite::polyReg(8),         benchsuite::l2Distance(8)};
    std::vector<benchsuite::Kernel> mix16 = mix8;
    for (const benchsuite::Kernel& kernel :
         {benchsuite::dotProduct(2), benchsuite::polyReg(2),
          benchsuite::l2Distance(2), benchsuite::linearReg(2),
          benchsuite::hammingDistance(2), benchsuite::linearReg(8),
          benchsuite::hammingDistance(8), benchsuite::sortKernel(2)}) {
        mix16.push_back(kernel);
    }
    struct Shape
    {
        const char* name;
        const std::vector<benchsuite::Kernel>* kernels;
    };
    const std::vector<Shape> shapes = {{"mix8", &mix8},
                                       {"mix16", &mix16}};

    std::filesystem::create_directories("results");
    std::vector<std::string> header = {
        "shape",         "lanes",        "cross_kernel",
        "workers",       "jobs",         "wall_s",
        "jobs_per_s",    "speedup_vs_solo", "packed_groups",
        "packed_lanes",  "composite_groups", "composite_members",
        "solo_runs",     "window_flushes",   "fallbacks"};
    benchcommon::appendLatencyColumns(header);
    CsvWriter csv("results/cross_kernel.csv", header);

    std::printf("%-6s %-6s %-6s %6s %9s %11s %9s %7s %7s %6s %8s %6s "
                "%8s %8s\n",
                "shape", "lanes", "cross", "jobs", "wall_s", "jobs/s",
                "speedup", "groups", "packed", "xrows", "xkernels",
                "solo", "qw_p99ms", "ex_p99ms");
    for (const Shape& shape : shapes) {
        std::vector<service::RunRequest> batch;
        for (int i = 0; i < jobs; ++i) {
            batch.push_back(makeRequest(
                (*shape.kernels)[static_cast<std::size_t>(i) %
                                 shape.kernels->size()],
                i, max_steps));
        }
        double solo_rate = 0.0;
        for (int lanes : lane_caps) {
            for (int cross = 0; cross < (lanes == 1 ? 1 : 2); ++cross) {
                const Outcome outcome =
                    runSweep(batch, lanes, cross != 0, workers);
                // Speedup baseline: the most recent lanes=1 run, or —
                // when the sweep omits 1 — the first run, so the column
                // is never 0/0.
                if (lanes == 1 || solo_rate == 0.0) {
                    solo_rate = outcome.jobs_per_second;
                }
                const double speedup =
                    solo_rate > 0.0 ? outcome.jobs_per_second / solo_rate
                                    : 0.0;
                const benchcommon::LatencySummary lat =
                    benchcommon::latencySummary(outcome.stats.telemetry);
                std::printf(
                    "%-6s %-6d %-6s %6zu %9.3f %11.1f %8.2fx %7llu %7llu "
                    "%6llu %8llu %6llu %8.2f %8.2f\n",
                    shape.name, lanes, cross ? "on" : "off", batch.size(),
                    outcome.wall_seconds, outcome.jobs_per_second, speedup,
                    static_cast<unsigned long long>(
                        outcome.stats.packed_groups),
                    static_cast<unsigned long long>(
                        outcome.stats.packed_lanes),
                    static_cast<unsigned long long>(
                        outcome.stats.composite_groups),
                    static_cast<unsigned long long>(
                        outcome.stats.composite_members),
                    static_cast<unsigned long long>(
                        outcome.stats.solo_runs),
                    lat.qwait_p99 * 1e3, lat.exec_p99 * 1e3);
                csv.writeRow(shape.name, lanes, cross, workers,
                             batch.size(), outcome.wall_seconds,
                             outcome.jobs_per_second, speedup,
                             outcome.stats.packed_groups,
                             outcome.stats.packed_lanes,
                             outcome.stats.composite_groups,
                             outcome.stats.composite_members,
                             outcome.stats.solo_runs,
                             outcome.stats.window_flushes,
                             outcome.stats.packed_fallbacks,
                             lat.qwait_p50, lat.qwait_p99,
                             lat.compile_p50, lat.compile_p99,
                             lat.exec_p50, lat.exec_p99,
                             lat.window_wait_p99);
            }
        }
    }
    std::printf("[bench] wrote results/cross_kernel.csv\n");
    return 0;
}
