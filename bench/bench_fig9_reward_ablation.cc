/// \file
/// Figure 9: reward ablation — step-only reward vs the default
/// step + terminal reward (§5.3.2). The paper finds the combined reward
/// delivers 1.291x faster circuits end to end because the terminal term
/// aligns the policy with global circuit quality.
#include <benchmark/benchmark.h>

#include "common.h"

namespace {

chehab::benchcommon::Harness&
harness()
{
    static chehab::benchcommon::Harness instance;
    return instance;
}

void
BM_EnvStep(benchmark::State& state)
{
    auto& h = harness();
    chehab::rl::RewriteEnv env(h.ruleset());
    const chehab::benchsuite::Kernel kernel =
        chehab::benchsuite::dotProduct(8);
    const int comm = h.ruleset().indexOf("add-comm");
    for (auto _ : state) {
        env.reset(kernel.program);
        benchmark::DoNotOptimize(env.step(comm, 0));
    }
}
BENCHMARK(BM_EnvStep);

} // namespace

int
main(int argc, char** argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    using chehab::benchcommon::Harness;
    using chehab::benchcommon::Row;
    auto& h = harness();

    std::vector<chehab::benchsuite::Kernel> kernels = {
        chehab::benchsuite::dotProduct(8),
        chehab::benchsuite::l2Distance(8),
        chehab::benchsuite::polyReg(8),
        chehab::benchsuite::hammingDistance(8),
        chehab::benchsuite::matMul(3),
    };

    auto train_and_eval = [&](const char* label, bool terminal) {
        chehab::rl::AgentConfig config = h.agentConfig();
        // Ablations compare pure policies: no cost-guided seed.
        config.use_greedy_seed = false;
        config.env.use_terminal_reward = terminal;
        config.ppo.total_timesteps =
            std::max(512, h.budget().train_steps / 2);
        chehab::rl::RlAgent agent(h.ruleset(), config);
        std::fprintf(stderr, "[bench] training with %s reward...\n", label);
        agent.train(h.motifDataset(256));
        // Evaluation always uses the full env; only training differed.
        std::vector<Row> rows;
        for (const auto& kernel : kernels) {
            rows.push_back(
                h.evaluate(kernel, label, h.compileRL(agent, kernel)));
        }
        return rows;
    };

    const std::vector<Row> combined =
        train_and_eval("step+terminal", true);
    const std::vector<Row> step_only = train_and_eval("step-only", false);

    Harness::printComparison("Fig. 9 — reward structure ablation",
                             combined, step_only);
    std::vector<Row> all = combined;
    all.insert(all.end(), step_only.begin(), step_only.end());
    Harness::writeCsv("fig9_reward_ablation.csv", all);

    const double ratio =
        Harness::geomeanRatio(step_only, combined, &Row::exec_s);
    std::printf("\nstep+terminal is %.3fx faster than step-only "
                "(geomean; paper: 1.291x)\n", ratio);
    return 0;
}
