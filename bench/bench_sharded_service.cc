/// \file
/// Sharded-service throughput benchmark: aggregate jobs/sec for a
/// skewed kernel mix submitted by concurrent clients, as the fleet
/// splits from one big pool into 2/4/8 shards at a *constant total
/// worker count* — so any speedup is contention relief (per-shard
/// pool/coalescer/stats/cache locks, N-way instead of global), not
/// extra parallelism.
///
/// Each configuration warms every shard's compile cache first (one
/// pre-round through the router, so affinity shards hold their keys),
/// then measures repeated rounds of the same batch with distinct
/// inputs per round. The mix is skewed — a few heavy kernels buried in
/// light ones — so the router's hot-shard test earns its keep: the
/// heavy keys' affinity shard overflows and spills to cooler shards
/// (run_rerouted in the summary) instead of queueing.
///
/// Correctness gate: *every* measured response's outputs are checked
/// against the plaintext reference evaluator — sharding must be
/// bit-invisible (routing only picks where a request executes; see the
/// determinism contract in service/shard_router.h).
///
/// Usage:
///   bench_sharded_service [SHARDS...]   shard counts to sweep
///                                       (default 1 2 4 8)
///
/// Environment knobs (see bench/common.h):
///   CHEHAB_BENCH_FAST=1    smaller mix, fewer rounds
///
/// Writes results/sharded_service.csv — including the shared latency
/// percentile columns, computed from the *merged* cross-shard
/// telemetry snapshot — and prints a summary table with the speedup
/// over the 1-shard baseline. The 1.3x-at-4-shards acceptance target
/// assumes 8+ physical cores; on smaller hosts the numbers report
/// contention relief that the cores cannot cash in.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <future>
#include <iterator>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "benchsuite/kernels.h"
#include "common.h"
#include "ir/evaluator.h"
#include "service/shard_router.h"
#include "support/csv.h"
#include "support/parse_int.h"
#include "support/stopwatch.h"

namespace {

using namespace chehab;

service::RunRequest
makeRequest(const benchsuite::Kernel& kernel, int index, int round,
            int max_steps)
{
    service::RunRequest request;
    request.name = kernel.name + "#" + std::to_string(index) + "." +
                   std::to_string(round);
    request.source = kernel.program;
    request.pipeline = compiler::DriverConfig::greedy({}, max_steps);
    request.params.n = 128; // 64-slot row: toy-sized small kernels.
    request.params.prime_count = 4;
    request.params.seed = 17;
    request.inputs = benchsuite::syntheticInputs(kernel.program);
    // Distinct inputs per request AND per round: identical requests
    // would collapse in the run cache instead of flowing through the
    // router. Kept small so reduction kernels stay far from the
    // plaintext modulus.
    for (auto& [name, value] : request.inputs) {
        value += ((index * 3 + round * 7 + 1) % 9 + 9) % 9;
    }
    request.key_budget = 0;
    return request;
}

struct Outcome
{
    double wall_seconds = 0.0;
    double jobs_per_second = 0.0;
    int jobs = 0; ///< Measured requests (warmup excluded).
    int wrong_outputs = 0;
    service::ServiceStats stats;
    service::RouterStats router;
    int shards = 1;
    int workers_per_shard = 1;
};

/// Check one response against the plaintext evaluator (mirrors the
/// service execute tests: scalar sources compare slot 0, vector
/// sources the full width, both modulo the plaintext modulus).
bool
outputMatches(const service::RunRequest& reference,
              const service::RunResponse& response)
{
    const auto norm = [](std::int64_t v, std::int64_t t) {
        return ((v % t) + t) % t;
    };
    const auto t =
        static_cast<std::int64_t>(reference.params.plain_modulus);
    const ir::Value expected =
        ir::Evaluator().evaluate(reference.source, reference.inputs);
    const std::vector<std::int64_t>& got = response.result.output;
    if (got.empty()) return false;
    if (expected.is_vector) {
        if (got.size() != expected.slots.size()) return false;
        for (std::size_t s = 0; s < got.size(); ++s) {
            if (norm(got[s], t) != norm(expected.slots[s], t)) {
                return false;
            }
        }
        return true;
    }
    return norm(got[0], t) == norm(expected.slots[0], t);
}

Outcome
runSweep(const std::vector<benchsuite::Kernel>& mix,
         int requests_per_kernel, int shards, int total_workers,
         int warmup_rounds, int rounds, int max_steps)
{
    service::ServiceConfig config;
    config.shards = shards;
    // Constant total worker count across the sweep: 8 shards of 1
    // worker compete for the same cores as 1 shard of 8.
    config.num_workers = std::max(1, total_workers / shards);
    config.max_lanes = 8;
    config.batch_window_seconds = 0.002;
    config.cross_kernel = true;
    // The percentile columns come from the merged cross-shard
    // histograms; the recorders run inside the measured region.
    config.telemetry = true;
    service::ShardedService service(config);

    Outcome outcome;
    outcome.shards = shards;
    outcome.workers_per_shard = config.num_workers;

    auto makeRound = [&](int round) {
        std::vector<service::RunRequest> batch;
        int index = 0;
        for (const benchsuite::Kernel& kernel : mix) {
            for (int r = 0; r < requests_per_kernel; ++r) {
                batch.push_back(
                    makeRequest(kernel, index++, round, max_steps));
            }
        }
        return batch;
    };

    // Concurrent clients, each owning a contiguous slice of the round
    // (one tenant's burst stays on one connection). The collected
    // (reference, response) pairs feed the post-measurement
    // correctness gate.
    const int clients = 4;
    using Checked =
        std::pair<service::RunRequest, service::RunResponse>;
    const auto runRound = [&](std::vector<service::RunRequest> batch,
                              std::vector<Checked>* collected) {
        std::vector<service::RunRequest> reference = batch;
        const std::size_t per_client =
            (batch.size() + clients - 1) / clients;
        std::vector<std::vector<std::future<service::RunResponse>>>
            futures(clients);
        std::vector<std::thread> threads;
        for (int c = 0; c < clients; ++c) {
            const std::size_t begin =
                std::min(static_cast<std::size_t>(c) * per_client,
                         batch.size());
            const std::size_t end =
                std::min(begin + per_client, batch.size());
            threads.emplace_back([&, c, begin, end] {
                for (std::size_t i = begin; i < end; ++i) {
                    futures[static_cast<std::size_t>(c)].push_back(
                        service.submitRun(std::move(
                            batch[i])));
                }
            });
        }
        for (std::thread& thread : threads) thread.join();
        std::size_t index = 0;
        for (auto& client_futures : futures) {
            for (auto& future : client_futures) {
                service::RunResponse response = future.get();
                if (!response.ok) {
                    std::fprintf(stderr, "[bench] %s FAILED: %s\n",
                                 response.name.c_str(),
                                 response.error.c_str());
                }
                if (collected) {
                    collected->emplace_back(
                        std::move(reference[index]),
                        std::move(response));
                }
                ++index;
            }
        }
    };

    // Warmup, part 1: pre-warm *every* shard's compile cache with the
    // full mix — the steady state a long-running fleet reaches once
    // stealing has spread the hot kernels everywhere. Without this the
    // first steal of each key pays a cold compile on the stealing
    // shard (hundreds of ms here, dwarfing the work being balanced)
    // and the measurement reports compile noise instead of routing.
    for (int s = 0; s < service.shards(); ++s) {
        std::vector<service::CompileRequest> warm;
        for (const benchsuite::Kernel& kernel : mix) {
            service::CompileRequest compile;
            compile.name = kernel.name;
            compile.source = kernel.program;
            compile.pipeline =
                compiler::DriverConfig::greedy({}, max_steps);
            warm.push_back(std::move(compile));
        }
        service.shard(s).compileBatch(std::move(warm));
    }
    // Warmup, part 2: rounds through the router train each shard's
    // EWMA execution profiles and arrival estimators under the same
    // client concurrency the measurement uses.
    for (int w = 0; w < warmup_rounds; ++w) {
        runRound(makeRound(-1 - w), nullptr);
    }

    std::vector<Checked> checked;
    const Stopwatch wall;
    for (int round = 0; round < rounds; ++round) {
        std::vector<service::RunRequest> batch = makeRound(round);
        outcome.jobs += static_cast<int>(batch.size());
        runRound(std::move(batch), &checked);
    }
    outcome.wall_seconds = wall.elapsedSeconds();
    outcome.jobs_per_second =
        static_cast<double>(outcome.jobs) / outcome.wall_seconds;
    // Let the final tasks' telemetry epilogues land before
    // snapshotting (futures resolve from inside worker tasks).
    service.drain();
    outcome.stats = service.stats();
    outcome.router = service.routerStats();

    // The gate: every measured response, whatever shard ran it, must
    // equal the plaintext evaluator's answer.
    for (const Checked& pair : checked) {
        if (!pair.second.ok || !outputMatches(pair.first, pair.second)) {
            ++outcome.wrong_outputs;
            std::fprintf(stderr, "[bench] %s OUTPUT MISMATCH\n",
                         pair.second.name.c_str());
        }
    }
    return outcome;
}

} // namespace

int
main(int argc, char** argv)
{
    const benchcommon::Budget budget = benchcommon::budgetFromEnv();
    const int max_steps = budget.fast ? 8 : 20;
    const int requests_per_kernel = 2;
    const int total_workers = 8;
    const int warmup_rounds = budget.fast ? 3 : 4;
    const int rounds = budget.fast ? 3 : 5;

    std::vector<int> shard_counts;
    for (int i = 1; i < argc; ++i) {
        int shards = 0;
        if (!parseInt(argv[i], shards) || shards < 1) {
            std::fprintf(stderr,
                         "bench_sharded_service: bad shard count '%s'\n",
                         argv[i]);
            return 2;
        }
        shard_counts.push_back(shards);
    }
    if (shard_counts.empty()) shard_counts = {1, 2, 4, 8};

    // The skewed mix (same shape as bench_load_model): 4 heavy wide
    // reductions buried in 12 light kernels. The heavy keys hash to
    // whatever shards the ring assigns them — the resulting imbalance
    // is what the load-based run routing has to absorb.
    std::vector<benchsuite::Kernel> mix = {
        // Heavy tail.
        benchsuite::dotProduct(32),     benchsuite::l2Distance(32),
        benchsuite::polyReg(16),        benchsuite::hammingDistance(32),
        // Light body.
        benchsuite::dotProduct(2),      benchsuite::polyReg(2),
        benchsuite::l2Distance(2),      benchsuite::linearReg(2),
        benchsuite::hammingDistance(2), benchsuite::dotProduct(4),
        benchsuite::polyReg(4),         benchsuite::l2Distance(4),
        benchsuite::linearReg(4),       benchsuite::hammingDistance(4),
        benchsuite::dotProduct(8),      benchsuite::linearReg(8)};
    if (budget.fast) mix.resize(8); // Keeps the 4-heavy/4-light skew.

    std::filesystem::create_directories("results");
    std::vector<std::string> header = {
        "shards",         "workers_per_shard", "total_workers",
        "jobs",           "wall_s",            "jobs_per_s",
        "speedup_vs_1shard", "compile_routed", "run_affinity",
        "run_rerouted",   "executed",          "solo_runs",
        "packed_lanes",   "run_cache_hits",    "wrong_outputs"};
    benchcommon::appendLatencyColumns(header);
    CsvWriter csv("results/sharded_service.csv", header);

    std::printf("bench_sharded_service: %zu kernels x %d requests x %d "
                "rounds, %d total workers (max_steps=%d)\n\n",
                mix.size(), requests_per_kernel, rounds, total_workers,
                max_steps);
    std::printf("%6s %6s %6s %9s %11s %8s %9s %9s %9s\n", "shards",
                "w/shard", "jobs", "wall_s", "jobs/s", "speedup",
                "affinity", "rerouted", "qw_p99ms");

    double base_rate = 0.0;
    bool correct = true;
    for (int shards : shard_counts) {
        const Outcome outcome =
            runSweep(mix, requests_per_kernel, shards, total_workers,
                     warmup_rounds, rounds, max_steps);
        // Speedup baseline: the most recent 1-shard run, or — when the
        // sweep omits 1 — the first run, so the column is never 0/0.
        if (shards == 1 || base_rate == 0.0) {
            base_rate = outcome.jobs_per_second;
        }
        const double speedup =
            base_rate > 0.0 ? outcome.jobs_per_second / base_rate : 0.0;
        correct = correct && outcome.wrong_outputs == 0;
        const benchcommon::LatencySummary lat =
            benchcommon::latencySummary(outcome.stats.telemetry);
        std::printf("%6d %6d %6d %9.3f %11.1f %7.2fx %9llu %9llu "
                    "%9.2f\n",
                    shards, outcome.workers_per_shard, outcome.jobs,
                    outcome.wall_seconds, outcome.jobs_per_second,
                    speedup,
                    static_cast<unsigned long long>(
                        outcome.router.run_affinity),
                    static_cast<unsigned long long>(
                        outcome.router.run_rerouted),
                    lat.qwait_p99 * 1e3);
        csv.writeRow(shards, outcome.workers_per_shard, total_workers,
                     outcome.jobs, outcome.wall_seconds,
                     outcome.jobs_per_second, speedup,
                     outcome.router.compile_routed,
                     outcome.router.run_affinity,
                     outcome.router.run_rerouted, outcome.stats.executed,
                     outcome.stats.solo_runs, outcome.stats.packed_lanes,
                     outcome.stats.run_cache.hits,
                     outcome.wrong_outputs, lat.qwait_p50,
                     lat.qwait_p99, lat.compile_p50, lat.compile_p99,
                     lat.exec_p50, lat.exec_p99, lat.window_wait_p99);
    }
    std::printf("\nwrote results/sharded_service.csv\n");
    if (!correct) {
        std::fprintf(stderr,
                     "bench_sharded_service: OUTPUT MISMATCHES "
                     "DETECTED\n");
        return 1;
    }
    return 0;
}
