/// \file
/// Figure 10: ICI vs BPE tokenization. The paper trains for 2M steps in
/// 43h with ICI vs 68h with BPE — the gap is tokenizer throughput (ICI is
/// one linear scan; BPE applies merge rules per word at every encode).
/// This bench measures (a) raw tokenizer throughput and (b) PPO training
/// wall time at a fixed step budget under each tokenizer.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "common.h"
#include "support/csv.h"
#include "tokenizer/bpe.h"

namespace {

chehab::benchcommon::Harness&
harness()
{
    static chehab::benchcommon::Harness instance;
    return instance;
}

chehab::tokenizer::BpeTokenizer
trainedBpe(chehab::benchcommon::Harness& h)
{
    // BPE vocabulary learned from a random IR corpus (App. H.2).
    std::vector<std::string> corpus;
    for (const auto& program : h.randomDataset(512)) {
        corpus.push_back(program->toString());
    }
    chehab::tokenizer::BpeTokenizer bpe;
    bpe.train(corpus, 200);
    return bpe;
}

void
BM_IciEncode(benchmark::State& state)
{
    const chehab::tokenizer::IciVocab vocab;
    const auto program = chehab::benchsuite::l2Distance(16).program;
    for (auto _ : state) {
        benchmark::DoNotOptimize(vocab.encode(program, 96));
    }
}
BENCHMARK(BM_IciEncode);

void
BM_BpeEncode(benchmark::State& state)
{
    static chehab::tokenizer::BpeTokenizer bpe = trainedBpe(harness());
    const auto program = chehab::benchsuite::l2Distance(16).program;
    for (auto _ : state) {
        benchmark::DoNotOptimize(bpe.encode(program, 96));
    }
}
BENCHMARK(BM_BpeEncode);

} // namespace

int
main(int argc, char** argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    auto& h = harness();
    const int steps = std::max(512, h.budget().train_steps / 2);
    const std::vector<chehab::ir::ExprPtr> corpus = h.motifDataset(256);

    // ICI-tokenized agent.
    chehab::rl::AgentConfig config = h.agentConfig();
    config.ppo.total_timesteps = steps;
    chehab::rl::RlAgent ici_agent(h.ruleset(), config);
    std::fprintf(stderr, "[bench] training with ICI tokenizer...\n");
    const chehab::rl::TrainStats ici = ici_agent.train(corpus);

    // BPE-tokenized agent (same architecture, BPE vocabulary).
    chehab::rl::RlAgent bpe_agent(
        h.ruleset(), config,
        std::make_unique<chehab::rl::BpeTokenEncoder>(trainedBpe(h)));
    std::fprintf(stderr, "[bench] training with BPE tokenizer...\n");
    const chehab::rl::TrainStats bpe = bpe_agent.train(corpus);

    std::printf("\n=== Fig. 10 — tokenizer training throughput ===\n");
    std::printf("%-6s %10s %14s %14s\n", "tok", "steps", "wall (s)",
                "steps/sec");
    std::printf("%-6s %10d %14.2f %14.1f\n", "ICI", ici.total_steps,
                ici.wall_seconds, ici.total_steps / ici.wall_seconds);
    std::printf("%-6s %10d %14.2f %14.1f\n", "BPE", bpe.total_steps,
                bpe.wall_seconds, bpe.total_steps / bpe.wall_seconds);
    std::printf("BPE/ICI wall-time ratio: %.2fx (paper: 68h/43h = 1.58x)\n",
                bpe.wall_seconds / ici.wall_seconds);

    std::filesystem::create_directories("results");
    chehab::CsvWriter csv("results/fig10_tokenizer.csv",
                          {"tokenizer", "steps", "wall_seconds",
                           "mean_return_final"});
    csv.writeRow("ICI", ici.total_steps, ici.wall_seconds,
                 ici.mean_return_curve.empty()
                     ? 0.0
                     : ici.mean_return_curve.back());
    csv.writeRow("BPE", bpe.total_steps, bpe.wall_seconds,
                 bpe.mean_return_curve.empty()
                     ? 0.0
                     : bpe.mean_return_curve.back());
    std::printf("[bench] wrote results/fig10_tokenizer.csv\n");
    return 0;
}
