/// \file
/// Cold-vs-warm fleet restart benchmark for the persistence tier
/// (service/persist.h). Two back-to-back service lifetimes share one
/// on-disk cache directory:
///
///   cold  — empty directory: every distinct kernel pays a full
///           optimizer run, and the artifacts are written back.
///   warm  — a fresh service over the same directory, as after a
///           restart/redeploy: the same kernels load their compiled
///           artifacts from disk instead of recompiling.
///
/// The request mix is 90% duplicates (each distinct kernel is
/// submitted `repeats` times; duplicates join the in-flight compile or
/// hit the in-memory cache), which is the regime where a restart hurts
/// most: the whole fleet stalls behind the handful of distinct
/// compiles. The reported metric is *time to first N results* with N =
/// the number of distinct kernels — the moment every kernel has
/// answered once and the fleet is effectively re-warmed.
///
/// Correctness gates (all hard failures):
///   - every response, cold and warm, matches the plaintext reference
///     evaluator modulo the plaintext modulus;
///   - the warm run is bit-identical to the cold run — same output
///     vectors, same disassembled program per request — i.e. a
///     warm-loaded artifact is indistinguishable from a fresh compile
///     (the determinism contract in service/persist.h);
///   - the warm run actually hit the store (persist_hits > 0) and the
///     cold run actually populated it (persist_writes > 0);
///   - warm time-to-first-N is >= 3x faster than cold.
///
/// Usage:
///   bench_warm_restart
///
/// Environment knobs (see bench/common.h):
///   CHEHAB_BENCH_FAST=1    smaller mix, cheaper pipeline
///
/// Writes results/warm_restart.csv.
#include <unistd.h>

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <future>
#include <string>
#include <utility>
#include <vector>

#include "benchsuite/kernels.h"
#include "common.h"
#include "ir/evaluator.h"
#include "service/shard_router.h"
#include "support/csv.h"
#include "support/stopwatch.h"

namespace {

using namespace chehab;

service::RunRequest
makeRequest(const benchsuite::Kernel& kernel, int index, int repeat,
            int max_steps)
{
    service::RunRequest request;
    request.name =
        kernel.name + "#" + std::to_string(repeat);
    request.source = kernel.program;
    request.pipeline = compiler::DriverConfig::greedy({}, max_steps);
    request.params.n = 128;
    request.params.prime_count = 4;
    request.params.seed = 17;
    request.inputs = benchsuite::syntheticInputs(kernel.program);
    // Jitter the duplicate submissions' inputs so they stay distinct in
    // the *run* cache while sharing one compile key — the mix is 90%
    // compile-duplicates, not 90% fully-cached no-ops. The jitter is a
    // pure function of (index, repeat), so the cold and warm runs
    // submit byte-identical request streams and their responses can be
    // compared for bit-identity.
    for (auto& [name, value] : request.inputs) {
        value += ((index * 3 + repeat * 7 + 1) % 9 + 9) % 9;
    }
    request.key_budget = 0;
    return request;
}

/// Mirrors the service execute tests: scalar sources compare slot 0,
/// vector sources the full width, both modulo the plaintext modulus.
bool
outputMatches(const service::RunRequest& reference,
              const service::RunResponse& response)
{
    const auto norm = [](std::int64_t v, std::int64_t t) {
        return ((v % t) + t) % t;
    };
    const auto t =
        static_cast<std::int64_t>(reference.params.plain_modulus);
    const ir::Value expected =
        ir::Evaluator().evaluate(reference.source, reference.inputs);
    const std::vector<std::int64_t>& got = response.result.output;
    if (got.empty()) return false;
    if (expected.is_vector) {
        if (got.size() != expected.slots.size()) return false;
        for (std::size_t s = 0; s < got.size(); ++s) {
            if (norm(got[s], t) != norm(expected.slots[s], t)) {
                return false;
            }
        }
        return true;
    }
    return norm(got[0], t) == norm(expected.slots[0], t);
}

struct PhaseOutcome
{
    double first_n_seconds = 0.0; ///< Until every distinct kernel answered.
    double wall_seconds = 0.0;    ///< Until the whole 90%-dup mix drained.
    int jobs = 0;
    int wrong_outputs = 0;
    service::ServiceStats stats;
    std::vector<service::RunResponse> responses;
};

/// One service lifetime over `cache_dir`. The batch is ordered with the
/// N distinct kernels first and the duplicate tail after, so "time to
/// first N results" is read off by draining the first N futures in
/// submission order.
PhaseOutcome
runPhase(const std::vector<benchsuite::Kernel>& mix, int repeats,
         const std::string& cache_dir, int shards, int total_workers,
         int max_steps)
{
    service::ServiceConfig config;
    config.shards = shards;
    config.num_workers = std::max(1, total_workers / shards);
    config.max_lanes = 1; // Solo runs: no packing nondeterminism in play.
    config.cache_dir = cache_dir;
    service::ShardedService service(config);

    std::vector<service::RunRequest> batch;
    for (int repeat = 0; repeat < repeats; ++repeat) {
        for (std::size_t k = 0; k < mix.size(); ++k) {
            batch.push_back(makeRequest(mix[k], static_cast<int>(k),
                                        repeat, max_steps));
        }
    }
    std::vector<service::RunRequest> reference = batch;

    PhaseOutcome outcome;
    outcome.jobs = static_cast<int>(batch.size());
    const Stopwatch watch;
    std::vector<std::future<service::RunResponse>> futures;
    futures.reserve(batch.size());
    for (service::RunRequest& request : batch) {
        futures.push_back(service.submitRun(std::move(request)));
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
        outcome.responses.push_back(futures[i].get());
        if (i + 1 == mix.size()) {
            outcome.first_n_seconds = watch.elapsedSeconds();
        }
    }
    outcome.wall_seconds = watch.elapsedSeconds();
    service.drain();
    outcome.stats = service.stats();

    for (std::size_t i = 0; i < outcome.responses.size(); ++i) {
        const service::RunResponse& response = outcome.responses[i];
        if (!response.ok || !outputMatches(reference[i], response)) {
            ++outcome.wrong_outputs;
            std::fprintf(stderr, "[bench] %s OUTPUT MISMATCH%s%s\n",
                         response.name.c_str(),
                         response.ok ? "" : ": ",
                         response.ok ? "" : response.error.c_str());
        }
    }
    return outcome;
}

/// The warm restart must be invisible in the results: same outputs
/// bit-for-bit, same compiled program per request.
int
countIdentityMismatches(const PhaseOutcome& cold,
                        const PhaseOutcome& warm)
{
    int mismatches = 0;
    const std::size_t n =
        std::min(cold.responses.size(), warm.responses.size());
    for (std::size_t i = 0; i < n; ++i) {
        const service::RunResponse& a = cold.responses[i];
        const service::RunResponse& b = warm.responses[i];
        if (a.name != b.name || a.result.output != b.result.output ||
            a.compiled.program.disassemble() !=
                b.compiled.program.disassemble()) {
            ++mismatches;
            std::fprintf(stderr,
                         "[bench] %s COLD/WARM IDENTITY MISMATCH\n",
                         a.name.c_str());
        }
    }
    return mismatches;
}

} // namespace

int
main()
{
    const benchcommon::Budget budget = benchcommon::budgetFromEnv();
    const int max_steps = budget.fast ? 10 : 50;
    const int repeats = 10; // 1 distinct + 9 duplicates = 90%-dup mix.
    const int shards = budget.fast ? 1 : 2;
    const int total_workers = 4;

    std::vector<benchsuite::Kernel> mix = {
        benchsuite::dotProduct(16),      benchsuite::l2Distance(16),
        benchsuite::polyReg(8),          benchsuite::hammingDistance(16),
        benchsuite::linearReg(8),        benchsuite::dotProduct(8),
        benchsuite::l2Distance(8),       benchsuite::polyReg(4)};
    if (budget.fast) mix.resize(4);

    const std::filesystem::path cache_dir =
        std::filesystem::temp_directory_path() /
        ("chehab_warm_restart_" + std::to_string(getpid()));
    std::filesystem::remove_all(cache_dir);

    std::printf("bench_warm_restart: %zu kernels x %d repeats "
                "(90%% dup), %d shards, %d workers, max_steps=%d\n",
                mix.size(), repeats, shards, total_workers, max_steps);
    std::printf("cache dir: %s\n\n", cache_dir.string().c_str());

    const PhaseOutcome cold = runPhase(mix, repeats, cache_dir.string(),
                                       shards, total_workers, max_steps);
    const PhaseOutcome warm = runPhase(mix, repeats, cache_dir.string(),
                                       shards, total_workers, max_steps);
    std::filesystem::remove_all(cache_dir);

    const double speedup =
        warm.first_n_seconds > 0.0
            ? cold.first_n_seconds / warm.first_n_seconds
            : 0.0;
    const int identity_mismatches = countIdentityMismatches(cold, warm);

    std::printf("%6s %6s %12s %10s %8s %8s %8s %8s\n", "phase", "jobs",
                "first_N_ms", "wall_ms", "p.hits", "p.miss", "p.corr",
                "p.write");
    const auto printPhase = [](const char* name,
                               const PhaseOutcome& outcome) {
        std::printf("%6s %6d %12.2f %10.2f %8llu %8llu %8llu %8llu\n",
                    name, outcome.jobs, outcome.first_n_seconds * 1e3,
                    outcome.wall_seconds * 1e3,
                    static_cast<unsigned long long>(
                        outcome.stats.persist.hits),
                    static_cast<unsigned long long>(
                        outcome.stats.persist.misses),
                    static_cast<unsigned long long>(
                        outcome.stats.persist.corrupt),
                    static_cast<unsigned long long>(
                        outcome.stats.persist.writes));
    };
    printPhase("cold", cold);
    printPhase("warm", warm);
    std::printf("\nwarm restart speedup to first %zu results: %.2fx\n",
                mix.size(), speedup);

    std::filesystem::create_directories("results");
    CsvWriter csv("results/warm_restart.csv",
                  {"phase", "jobs", "first_n_s", "wall_s",
                   "persist_hits", "persist_misses", "persist_corrupt",
                   "persist_writes", "wrong_outputs",
                   "identity_mismatches", "speedup_first_n"});
    csv.writeRow("cold", cold.jobs, cold.first_n_seconds,
                 cold.wall_seconds, cold.stats.persist.hits,
                 cold.stats.persist.misses, cold.stats.persist.corrupt,
                 cold.stats.persist.writes, cold.wrong_outputs, 0, 1.0);
    csv.writeRow("warm", warm.jobs, warm.first_n_seconds,
                 warm.wall_seconds, warm.stats.persist.hits,
                 warm.stats.persist.misses, warm.stats.persist.corrupt,
                 warm.stats.persist.writes, warm.wrong_outputs,
                 identity_mismatches, speedup);
    std::printf("wrote results/warm_restart.csv\n");

    bool ok = true;
    if (cold.wrong_outputs + warm.wrong_outputs > 0) {
        std::fprintf(stderr, "bench_warm_restart: OUTPUT MISMATCHES\n");
        ok = false;
    }
    if (identity_mismatches > 0) {
        std::fprintf(stderr,
                     "bench_warm_restart: warm run not bit-identical "
                     "to cold run\n");
        ok = false;
    }
    if (cold.stats.persist.writes == 0) {
        std::fprintf(stderr,
                     "bench_warm_restart: cold run wrote no artifacts\n");
        ok = false;
    }
    if (warm.stats.persist.hits == 0) {
        std::fprintf(stderr,
                     "bench_warm_restart: warm run loaded no artifacts\n");
        ok = false;
    }
    if (speedup < 3.0) {
        std::fprintf(stderr,
                     "bench_warm_restart: speedup %.2fx below the 3x "
                     "acceptance bar\n",
                     speedup);
        ok = false;
    }
    return ok ? 0 : 1;
}
