/// \file
/// RewriteEnv tests: reward structure (§5.3.2), END action, episode caps,
/// action masking and the reward-ablation switches.
#include <gtest/gtest.h>

#include "ir/parser.h"
#include "rl/env.h"

namespace chehab::rl {
namespace {

using ir::parse;

const trs::Ruleset&
ruleset()
{
    static const trs::Ruleset rs = trs::buildChehabRuleset();
    return rs;
}

TEST(RewriteEnvTest, ResetInitializesCosts)
{
    RewriteEnv env(ruleset());
    env.reset(parse("(+ (* x 1) 0)"));
    EXPECT_FALSE(env.done());
    EXPECT_GT(env.initialCost(), 0.0);
    EXPECT_DOUBLE_EQ(env.initialCost(), env.currentCost());
    EXPECT_EQ(env.stepsTaken(), 0);
}

TEST(RewriteEnvTest, MatchCountsMaskRules)
{
    RewriteEnv env(ruleset());
    env.reset(parse("(+ (* a b) (* a c))"));
    const std::vector<int>& counts = env.matchCounts();
    const int factor = ruleset().indexOf("comm-factor-ll");
    const int rotate_zero = ruleset().indexOf("rotate-zero");
    EXPECT_GT(counts[static_cast<std::size_t>(factor)], 0);
    EXPECT_EQ(counts[static_cast<std::size_t>(rotate_zero)], 0);
    // END is always available.
    EXPECT_EQ(counts[static_cast<std::size_t>(env.endAction())], 1);
}

TEST(RewriteEnvTest, StepRewardIsRelativeImprovement)
{
    RewriteEnv env(ruleset());
    env.reset(parse("(+ x 0)"));
    const double c0 = env.currentCost();
    const int rule = ruleset().indexOf("add-identity-r");
    const StepResult result = env.step(rule, 0);
    EXPECT_TRUE(result.applied);
    const double c1 = env.currentCost();
    EXPECT_NEAR(result.reward, (c0 - c1) / c0, 1e-9);
    EXPECT_LT(c1, c0);
}

TEST(RewriteEnvTest, EndActionGivesTerminalReward)
{
    RewriteEnv env(ruleset());
    env.reset(parse("(+ x 0)"));
    env.step(ruleset().indexOf("add-identity-r"), 0);
    const double improvement =
        (env.initialCost() - env.currentCost()) / env.initialCost();
    const StepResult result = env.step(env.endAction(), 0);
    EXPECT_TRUE(result.done);
    EXPECT_NEAR(result.reward, improvement * 100.0, 1e-6);
    EXPECT_TRUE(env.done());
}

TEST(RewriteEnvTest, TerminalRewardDisabled)
{
    EnvConfig config;
    config.use_terminal_reward = false;
    RewriteEnv env(ruleset(), config);
    env.reset(parse("(+ x 0)"));
    env.step(ruleset().indexOf("add-identity-r"), 0);
    const StepResult result = env.step(env.endAction(), 0);
    EXPECT_DOUBLE_EQ(result.reward, 0.0);
}

TEST(RewriteEnvTest, StepRewardDisabled)
{
    EnvConfig config;
    config.use_step_reward = false;
    RewriteEnv env(ruleset(), config);
    env.reset(parse("(+ x 0)"));
    const StepResult result =
        env.step(ruleset().indexOf("add-identity-r"), 0);
    EXPECT_DOUBLE_EQ(result.reward, 0.0);
}

TEST(RewriteEnvTest, InvalidActionPenalized)
{
    RewriteEnv env(ruleset());
    env.reset(parse("(+ a b)"));
    const int rotate_zero = ruleset().indexOf("rotate-zero");
    const StepResult result = env.step(rotate_zero, 0);
    EXPECT_FALSE(result.applied);
    EXPECT_LT(result.reward, 0.0);
}

TEST(RewriteEnvTest, EpisodeCapEndsEpisode)
{
    EnvConfig config;
    config.max_steps = 3;
    RewriteEnv env(ruleset(), config);
    env.reset(parse("(+ a b)"));
    const int comm = ruleset().indexOf("add-comm");
    env.step(comm, 0);
    env.step(comm, 0);
    const StepResult result = env.step(comm, 0);
    EXPECT_TRUE(result.done);
    EXPECT_TRUE(env.done());
}

TEST(RewriteEnvTest, CostNeutralLoopGivesZeroReward)
{
    RewriteEnv env(ruleset());
    env.reset(parse("(+ a b)"));
    const int comm = ruleset().indexOf("add-comm");
    const StepResult result = env.step(comm, 0);
    EXPECT_TRUE(result.applied);
    EXPECT_NEAR(result.reward, 0.0, 1e-9);
}

TEST(RewriteEnvTest, WeightsAffectCost)
{
    EnvConfig heavy;
    heavy.weights = {1.0, 100.0, 100.0};
    RewriteEnv env_heavy(ruleset(), heavy);
    RewriteEnv env_default(ruleset());
    const ir::ExprPtr program = parse("(* (* a b) c)");
    env_heavy.reset(program);
    env_default.reset(program);
    EXPECT_GT(env_heavy.initialCost(), env_default.initialCost());
}

} // namespace
} // namespace chehab::rl
