/// \file
/// Tests for typing, depth metrics and operation counting — the Table 6
/// circuit statistics.
#include <gtest/gtest.h>

#include "ir/analysis.h"
#include "ir/parser.h"
#include "support/error.h"

namespace chehab::ir {
namespace {

TEST(TypeTest, ScalarAndVector)
{
    EXPECT_FALSE(typeOf(parse("(+ a b)")).is_vector);
    const TypeInfo t = typeOf(parse("(Vec a b c)"));
    EXPECT_TRUE(t.is_vector);
    EXPECT_EQ(t.width, 3);
}

TEST(TypeTest, PlainnessPropagates)
{
    EXPECT_TRUE(typeOf(parse("(* (pt a) 3)")).is_plain);
    EXPECT_FALSE(typeOf(parse("(* (pt a) x)")).is_plain);
}

TEST(TypeTest, RejectsShapeErrors)
{
    EXPECT_THROW(typeOf(parse("(+ (Vec a b) c)")), CompileError);
    EXPECT_THROW(typeOf(parse("(VecAdd a b)")), CompileError);
    EXPECT_THROW(typeOf(parse("(VecAdd (Vec a b) (Vec c d e))")),
                 CompileError);
    EXPECT_THROW(typeOf(parse("(Vec (Vec a b) c)")), CompileError);
    EXPECT_THROW(typeOf(parse("(<< a 1)")), CompileError);
}

TEST(TypeTest, RotatePreservesWidth)
{
    const TypeInfo t = typeOf(parse("(<< (Vec a b c d) 2)"));
    EXPECT_TRUE(t.is_vector);
    EXPECT_EQ(t.width, 4);
}

TEST(DepthTest, CircuitDepth)
{
    EXPECT_EQ(circuitDepth(parse("x")), 0);
    EXPECT_EQ(circuitDepth(parse("(+ a b)")), 1);
    EXPECT_EQ(circuitDepth(parse("(+ (+ a b) (+ c d))")), 2);
    EXPECT_EQ(circuitDepth(parse("(+ (+ (+ a b) c) d)")), 3);
    // Vec constructors are free.
    EXPECT_EQ(circuitDepth(parse("(VecAdd (Vec a b) (Vec c d))")), 1);
    // Rotations are compute ops.
    EXPECT_EQ(circuitDepth(parse("(<< (VecAdd (Vec a b) (Vec c d)) 1)")), 2);
}

TEST(DepthTest, PlainSubtreesAreFree)
{
    // The plaintext product is computed before encryption.
    EXPECT_EQ(circuitDepth(parse("(* (* (pt a) (pt b)) x)")), 1);
}

TEST(DepthTest, MultiplicativeDepthCountsCtCtOnly)
{
    EXPECT_EQ(multiplicativeDepth(parse("(* a b)")), 1);
    EXPECT_EQ(multiplicativeDepth(parse("(* (* a b) (* c d))")), 2);
    EXPECT_EQ(multiplicativeDepth(parse("(+ (* a b) c)")), 1);
    // ct-pt multiplications do not raise multiplicative depth.
    EXPECT_EQ(multiplicativeDepth(parse("(* (pt w) (* a b))")), 1);
    EXPECT_EQ(multiplicativeDepth(parse("(+ a b)")), 0);
}

TEST(DepthTest, MotivatingExampleDepths)
{
    const ExprPtr e = parse(
        "(* (+ (* (* v1 v2) (* v3 v4)) (* (* v3 v4) (* v5 v6)))"
        "   (* (* v7 v8) (* v9 v10)))");
    EXPECT_EQ(multiplicativeDepth(e), 3);
    EXPECT_EQ(circuitDepth(e), 4);
}

TEST(OpCountTest, ScalarClassification)
{
    const OpCounts c = countOps(parse("(+ (* a b) (* (pt w) c))"));
    EXPECT_EQ(c.ct_add, 1);
    EXPECT_EQ(c.ct_ct_mul, 1);
    EXPECT_EQ(c.ct_pt_mul, 1);
    EXPECT_EQ(c.scalar_ops, 3);
    EXPECT_EQ(c.vector_ops, 0);
}

TEST(OpCountTest, SquareDetection)
{
    const OpCounts c = countOps(parse("(* (- a b) (- a b))"));
    EXPECT_EQ(c.square, 1);
    EXPECT_EQ(c.ct_ct_mul, 0);
    // The two structurally identical subtrahends count once (CSE).
    EXPECT_EQ(c.ct_add, 1);
}

TEST(OpCountTest, DagUniqueCounting)
{
    // (* v3 v4) appears twice; DAG counting sees it once.
    const ExprPtr e = parse("(+ (* (* v1 v2) (* v3 v4)) (* (* v3 v4) v5))");
    EXPECT_EQ(countOps(e, true).ct_ct_mul, 4);
    EXPECT_EQ(countOps(e, false).ct_ct_mul, 5);
}

TEST(OpCountTest, VectorOps)
{
    const OpCounts c = countOps(
        parse("(VecAdd (VecMul (Vec a b) (Vec c d)) (<< (Vec e f) 1))"));
    EXPECT_EQ(c.ct_add, 1);
    EXPECT_EQ(c.ct_ct_mul, 1);
    EXPECT_EQ(c.rotation, 1);
    EXPECT_EQ(c.vector_ops, 3);
    EXPECT_EQ(c.scalar_ops, 0);
}

TEST(OpCountTest, PlainOpsAreSeparate)
{
    const OpCounts c = countOps(parse("(* (+ (pt a) (pt b)) x)"));
    EXPECT_EQ(c.plain_ops, 1);
    EXPECT_EQ(c.ct_pt_mul, 1);
    EXPECT_EQ(c.total(), 1);
}

TEST(VarsTest, CollectionOrderAndKinds)
{
    const ExprPtr e = parse("(+ (* a (pt w)) (- b a))");
    EXPECT_EQ(ciphertextVars(e), (std::vector<std::string>{"a", "b"}));
    EXPECT_EQ(plaintextVars(e), (std::vector<std::string>{"w"}));
}

TEST(VarsTest, RotationSteps)
{
    const ExprPtr e =
        parse("(VecAdd (<< (Vec a b c d) 3) (<< (Vec a b c d) 1))");
    EXPECT_EQ(rotationSteps(e), (std::vector<int>{1, 3}));
}

TEST(WidthTest, OutputWidth)
{
    EXPECT_EQ(outputWidth(parse("(+ a b)")), 1);
    EXPECT_EQ(outputWidth(parse("(Vec a b c d)")), 4);
}

} // namespace
} // namespace chehab::ir
