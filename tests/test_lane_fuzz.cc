/// \file
/// Packed-vs-solo differential fuzz harness for the slot-batching
/// coalescer, plus directed regressions for the rotation-margin rules.
///
/// The lane-safety analysis (service::analyzeLaneFit) is the single
/// soundness gate between "pack these requests into one ciphertext
/// row" and silent cross-lane data corruption, so its correctness
/// story must be machine-checked, not hand-argued. The harness
/// generates seeded random FHE programs — rotations with positive,
/// negative and NAF-decomposed steps, constant masks (with and without
/// zero tails), replicated and zero-padded packs, adds, subs and
/// multiplies — and for every program:
///
///   - when analyzeLaneFit certifies a stride, executes the program
///     packed (FheRuntime::runPacked, and cross-kernel composites via
///     runComposite) and solo, and asserts bit-identical per-lane
///     outputs whenever both executions keep a positive noise budget
///     (the service's own fallback guard);
///   - when it refuses, asserts the refusal reason is populated.
///
/// Seeds are fixed: every run checks the same programs. The default
/// ctest entry runs the quick variant; the exhaustive *Heavy* variants
/// are registered separately under the `slow` ctest label (excluded
/// from default invocations, run on demand via `ctest -L slow`).
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <random>
#include <string>
#include <vector>

#include "compiler/keyselect.h"
#include "compiler/runtime.h"
#include "compiler/schedule.h"
#include "fhe/ntt.h"
#include "ir/evaluator.h"
#include "ir/parser.h"
#include "service/batch_planner.h"
#include "service/compile_service.h"
#include "service/shard_router.h"

namespace chehab::service {
namespace {

using compiler::FheInstr;
using compiler::FheOpcode;
using compiler::FheProgram;
using compiler::PackSlot;
using compiler::RotationKeyPlan;

fhe::SealLiteParams
fuzzParams()
{
    fhe::SealLiteParams params;
    params.n = 128; // 64-slot row: strides stay small, runs stay fast.
    params.prime_count = 4;
    params.seed = 29;
    return params;
}

constexpr int kRowSlots = 64; // fuzzParams().n / 2

/// One generated program plus the number of ciphertext input variables
/// it binds (v0..v{num_vars-1}).
struct GenProgram
{
    FheProgram program;
    int num_vars = 0;
};

/// Deterministic inputs for lane \p lane of generated program \p gen.
ir::Env
fuzzInputs(const GenProgram& gen, int lane)
{
    ir::Env env;
    for (int v = 0; v < gen.num_vars; ++v) {
        env["v" + std::to_string(v)] =
            (lane * 37 + v * 11 + 5) % 97 + 1;
    }
    return env;
}

/// Random small FHE program over ciphertext packs, constant masks,
/// adds/subs/muls and rotations (positive and negative steps).
GenProgram
genProgram(std::mt19937& rng)
{
    auto pick = [&rng](int lo, int hi) {
        return lo + static_cast<int>(rng() % static_cast<unsigned>(
                                                 hi - lo + 1));
    };
    GenProgram gen;
    FheProgram& program = gen.program;
    std::vector<int> cts;
    std::vector<int> plains;
    int reg = 0;

    const int num_ct_packs = pick(1, 2);
    for (int p = 0; p < num_ct_packs; ++p) {
        FheInstr pack;
        pack.op = FheOpcode::PackCipher;
        pack.dst = reg++;
        pack.replicate = pick(0, 3) == 0;
        const int width = pick(1, 6);
        for (int i = 0; i < width; ++i) {
            PackSlot slot;
            if (pick(0, 3) == 0) {
                slot.kind = PackSlot::Kind::Const;
                slot.value = pick(0, 5); // Zeros included: zero support.
            } else {
                slot.kind = PackSlot::Kind::CtVar;
                slot.name = "v" + std::to_string(gen.num_vars++);
            }
            pack.slots.push_back(std::move(slot));
        }
        cts.push_back(pack.dst);
        program.instrs.push_back(std::move(pack));
    }
    if (pick(0, 1) == 0) {
        // A constant mask pack: zero-tailed half the time (the shape
        // the mask-cleaning rule exists for), replicated sometimes.
        FheInstr mask;
        mask.op = FheOpcode::PackPlain;
        mask.dst = reg++;
        mask.replicate = pick(0, 2) == 0;
        const int width = pick(1, 6);
        const int tail = pick(0, 1) == 0 ? pick(0, width) : width;
        for (int i = 0; i < width; ++i) {
            PackSlot slot;
            slot.kind = PackSlot::Kind::Const;
            slot.value = i < tail ? pick(1, 3) : 0;
            mask.slots.push_back(std::move(slot));
        }
        plains.push_back(mask.dst);
        program.instrs.push_back(std::move(mask));
    }

    const int num_ops = pick(2, 8);
    for (int i = 0; i < num_ops; ++i) {
        FheInstr instr;
        instr.dst = reg++;
        const int choice = pick(0, 9);
        if (choice < 2) { // Rotate, mixed sign and magnitude.
            instr.op = FheOpcode::Rotate;
            instr.a = cts[static_cast<std::size_t>(
                pick(0, static_cast<int>(cts.size()) - 1))];
            const int magnitude = pick(0, 1) == 0 ? pick(1, 7) : pick(1, 3) * 4;
            instr.step = pick(0, 1) == 0 ? magnitude : -magnitude;
        } else if (choice < 4 && !plains.empty()) {
            instr.op = choice == 2 ? FheOpcode::MulPlain
                                   : FheOpcode::AddPlain;
            instr.a = cts[static_cast<std::size_t>(
                pick(0, static_cast<int>(cts.size()) - 1))];
            instr.b = plains[static_cast<std::size_t>(
                pick(0, static_cast<int>(plains.size()) - 1))];
        } else if (choice < 6) {
            instr.op = FheOpcode::Mul;
            instr.a = cts[static_cast<std::size_t>(
                pick(0, static_cast<int>(cts.size()) - 1))];
            instr.b = cts[static_cast<std::size_t>(
                pick(0, static_cast<int>(cts.size()) - 1))];
        } else if (choice < 7) {
            instr.op = FheOpcode::Negate;
            instr.a = cts[static_cast<std::size_t>(
                pick(0, static_cast<int>(cts.size()) - 1))];
        } else {
            instr.op = pick(0, 1) == 0 ? FheOpcode::Add : FheOpcode::Sub;
            instr.a = cts[static_cast<std::size_t>(
                pick(0, static_cast<int>(cts.size()) - 1))];
            instr.b = cts[static_cast<std::size_t>(
                pick(0, static_cast<int>(cts.size()) - 1))];
        }
        cts.push_back(instr.dst);
        program.instrs.push_back(std::move(instr));
    }

    program.num_regs = reg;
    program.output_reg = cts.back();
    program.output_width = pick(1, 4);
    return gen;
}

/// Solo-execute \p program once per lane env and compare against the
/// packed per-lane outputs. Returns false (without asserting) when
/// either execution exhausted its noise budget — the service falls
/// back to solo there, so packed bits are not promised.
bool
expectPackedMatchesSolo(const FheProgram& program,
                        const RotationKeyPlan& plan, int stride,
                        const std::vector<ir::Env>& envs,
                        const std::string& context)
{
    std::vector<const ir::Env*> lanes;
    lanes.reserve(envs.size());
    for (const ir::Env& env : envs) lanes.push_back(&env);
    compiler::FheRuntime packed_rt(fuzzParams());
    const compiler::PackedRunResult packed =
        packed_rt.runPacked(program, lanes, plan, stride);
    if (packed.shared.final_noise_budget <= 0) return false;
    for (std::size_t l = 0; l < envs.size(); ++l) {
        compiler::FheRuntime solo_rt(fuzzParams());
        const compiler::RunResult solo =
            solo_rt.run(program, envs[l], plan);
        if (solo.final_noise_budget <= 0) return false;
        EXPECT_EQ(packed.lane_outputs[l], solo.output)
            << context << " lane " << l;
    }
    return true;
}

/// The core fuzz loop: \p iterations seeded random programs, each
/// analyzed and — when certified — differentially executed.
void
fuzzPackedVsSolo(std::uint32_t seed, int iterations)
{
    std::mt19937 rng(seed);
    int certified = 0;
    int compared = 0;
    int refused = 0;
    for (int i = 0; i < iterations; ++i) {
        const GenProgram gen = genProgram(rng);
        const int budget = static_cast<int>(rng() % 3); // 0, 1 or 2.
        RotationKeyPlan plan;
        try {
            plan = compiler::effectiveKeyPlan(gen.program, budget);
        } catch (const std::exception&) {
            continue; // Key selection rejected the step set; not ours.
        }
        const LaneFit fit =
            analyzeLaneFit(gen.program, plan, kRowSlots);
        if (!fit.safe) {
            ++refused;
            // Refusals must always explain themselves.
            EXPECT_FALSE(fit.reason.empty()) << "iteration " << i;
            continue;
        }
        ++certified;
        const int num_lanes =
            2 + static_cast<int>(rng() % static_cast<unsigned>(
                                     std::min(fit.max_lanes - 1, 3)));
        std::vector<ir::Env> envs;
        for (int l = 0; l < num_lanes; ++l) {
            envs.push_back(fuzzInputs(gen, l));
        }
        if (expectPackedMatchesSolo(gen.program, plan, fit.stride, envs,
                                    "seed " + std::to_string(seed) +
                                        " iteration " +
                                        std::to_string(i))) {
            ++compared;
        }
    }
    // The generator must actually exercise both verdicts, and most
    // certified programs must survive the noise guard — otherwise the
    // harness is fuzzing air.
    EXPECT_GT(certified, iterations / 8);
    EXPECT_GT(refused, iterations / 20);
    EXPECT_GT(compared, certified / 2);
}

/// Cross-kernel variant: pack several independently generated programs
/// onto disjoint lane blocks of one composite row and compare every
/// member lane against its solo run.
void
fuzzCompositeVsSolo(std::uint32_t seed, int iterations)
{
    std::mt19937 rng(seed);
    int composed = 0;
    for (int i = 0; i < iterations; ++i) {
        const int num_members = 2 + static_cast<int>(rng() % 2);
        std::vector<GenProgram> gens;
        std::vector<compiler::Compiled> artifacts;
        artifacts.reserve(static_cast<std::size_t>(num_members));
        std::vector<RotationKeyPlan> plans;
        std::vector<LaneFit> fits;
        bool viable = true;
        int stride = 1;
        RotationKeyPlan merged;
        for (int m = 0; m < num_members && viable; ++m) {
            GenProgram gen = genProgram(rng);
            RotationKeyPlan plan;
            try {
                plan = compiler::effectiveKeyPlan(gen.program, 0);
            } catch (const std::exception&) {
                viable = false;
                break;
            }
            const LaneFit fit =
                analyzeLaneFit(gen.program, plan, kRowSlots);
            if (!fit.safe) {
                viable = false;
                break;
            }
            std::optional<RotationKeyPlan> grown =
                m == 0 ? std::optional<RotationKeyPlan>(plan)
                       : mergeKeyPlans(merged, plan);
            if (!grown) {
                viable = false;
                break;
            }
            merged = std::move(*grown);
            stride = std::max(stride, fit.stride);
            gens.push_back(std::move(gen));
            plans.push_back(std::move(plan));
            fits.push_back(fit);
        }
        if (!viable || stride > kRowSlots / 2) continue;

        // Build a canonical-shape group by hand (the planner normally
        // does this) and compose it.
        BatchPlanner::Group group;
        group.row_slots = kRowSlots;
        group.stride = stride;
        group.merged_plan = merged;
        int lane_base = 0;
        std::vector<std::vector<ir::Env>> member_envs;
        for (std::size_t m = 0; m < gens.size(); ++m) {
            const int want =
                1 + static_cast<int>(rng() % 2); // 1-2 lanes each.
            const int lanes = std::min(
                want, kRowSlots / stride - lane_base -
                          (static_cast<int>(gens.size()) - 1 -
                           static_cast<int>(m)));
            if (lanes <= 0) break;
            artifacts.emplace_back();
            artifacts.back().program = gens[m].program;
            BatchPlanner::GroupMember member;
            member.compile.source.hi = m; // Synthetic, distinct.
            member.compiled = &artifacts.back();
            member.plan = plans[m];
            member.min_stride = fits[m].stride;
            member.lane_base = lane_base;
            member.lanes.resize(static_cast<std::size_t>(lanes));
            group.members.push_back(std::move(member));
            group.total_lanes += lanes;
            lane_base += lanes;
            std::vector<ir::Env> envs;
            for (int l = 0; l < lanes; ++l) {
                envs.push_back(fuzzInputs(gens[m], lane_base + l));
            }
            member_envs.push_back(std::move(envs));
        }
        if (group.members.size() < 2) continue;

        const compiler::CompositeProgram composite = composeGroup(group);
        std::vector<std::vector<const ir::Env*>> member_lanes;
        for (const std::vector<ir::Env>& envs : member_envs) {
            std::vector<const ir::Env*> ptrs;
            for (const ir::Env& env : envs) ptrs.push_back(&env);
            member_lanes.push_back(std::move(ptrs));
        }
        compiler::FheRuntime composite_rt(fuzzParams());
        const compiler::CompositeRunResult result =
            composite_rt.runComposite(composite, member_lanes);
        ++composed;
        for (std::size_t m = 0; m < group.members.size(); ++m) {
            if (result.member_final_budgets[m] <= 0) continue;
            for (std::size_t l = 0; l < member_envs[m].size(); ++l) {
                compiler::FheRuntime solo_rt(fuzzParams());
                const compiler::RunResult solo = solo_rt.run(
                    gens[m].program, member_envs[m][l], plans[m]);
                if (solo.final_noise_budget <= 0) continue;
                EXPECT_EQ(result.member_outputs[m][l], solo.output)
                    << "seed " << seed << " iteration " << i
                    << " member " << m << " lane " << l;
            }
        }
    }
    EXPECT_GT(composed, 0);
}

/// Service-level variant over the real DSL: random small IR kernels
/// (scalar arithmetic and rotated vectors, through the full compile
/// pipeline) run through a solo service and a cross-kernel batching
/// service; outputs must match bit for bit (the solo service is
/// itself evaluator-checked in test_service_batching.cc).
void
fuzzServiceVsSolo(std::uint32_t seed, int num_kernels,
                  bool mod_switch = false)
{
    std::mt19937 rng(seed);
    auto pick = [&rng](int lo, int hi) {
        return lo + static_cast<int>(rng() % static_cast<unsigned>(
                                                 hi - lo + 1));
    };
    // Random scalar expression over variables a..f and small consts.
    std::function<std::string(int)> genExpr = [&](int depth) {
        if (depth <= 0 || pick(0, 3) == 0) {
            if (pick(0, 2) == 0) return std::to_string(pick(1, 4));
            return std::string(1, static_cast<char>('a' + pick(0, 5)));
        }
        const char* ops[] = {"+", "-", "*"};
        return "(" + std::string(ops[pick(0, 2)]) + " " +
               genExpr(depth - 1) + " " + genExpr(depth - 1) + ")";
    };
    auto genKernel = [&]() {
        if (pick(0, 2) == 0) {
            // A rotated vector kernel: negative steps via >>.
            const std::string dir = pick(0, 1) == 0 ? "<<" : ">>";
            std::string vec = "(Vec";
            const int width = pick(2, 4);
            for (int i = 0; i < width; ++i) {
                vec += " " + std::string(1, static_cast<char>('a' + i));
            }
            vec += ")";
            return "(" + dir + " " + vec + " " +
                   std::to_string(pick(1, 3)) + ")";
        }
        return genExpr(pick(1, 3));
    };

    std::vector<RunRequest> batch;
    for (int k = 0; k < num_kernels; ++k) {
        const std::string text = genKernel();
        for (int copy = 0; copy < 2; ++copy) {
            RunRequest request;
            request.name =
                "k" + std::to_string(k) + "c" + std::to_string(copy);
            request.source = ir::parse(text);
            request.pipeline = compiler::DriverConfig::greedy({}, 12);
            if (mod_switch) {
                // Differential contract under mid-circuit modulus
                // switching: drops may change moduli and noise but
                // never the decoded outputs the solo side produces.
                request.pipeline.passes.push_back("mod-switch");
            }
            for (char v = 'a'; v <= 'f'; ++v) {
                request.inputs[std::string(1, v)] =
                    (k * 13 + copy * 7 + (v - 'a') * 3) % 23 + 1;
            }
            request.key_budget = 0;
            request.params = fuzzParams();
            batch.push_back(std::move(request));
        }
    }

    auto collect = [&batch](ServiceApi& service) {
        std::vector<std::vector<std::int64_t>> outputs;
        for (RunResponse& response : service.runBatch(batch)) {
            EXPECT_TRUE(response.ok)
                << response.name << ": " << response.error;
            outputs.push_back(response.result.output);
        }
        return outputs;
    };
    auto outputsOf = [&collect](const ServiceConfig& config) {
        CompileService service(config);
        return collect(service);
    };
    auto shardedOutputsOf = [&collect](ServiceConfig config, int shards) {
        config.shards = shards;
        ShardedService service(config);
        return collect(service);
    };
    ServiceConfig solo;
    solo.num_workers = 2;
    solo.max_lanes = 1;
    ServiceConfig packed;
    packed.num_workers = 4;
    packed.max_lanes = 0;
    packed.batch_window_seconds = 0.02;
    packed.cross_kernel = true;
    const auto solo_outputs = outputsOf(solo);
    const auto packed_outputs = outputsOf(packed);
    // Differential contract extends across the router: a 1-shard
    // ShardedService is the plain service, and a multi-shard fleet may
    // regroup rows per shard but never change a lane's bits.
    const auto sharded1_outputs = shardedOutputsOf(packed, 1);
    const auto sharded3_outputs = shardedOutputsOf(packed, 3);
    ASSERT_EQ(solo_outputs.size(), packed_outputs.size());
    ASSERT_EQ(solo_outputs.size(), sharded1_outputs.size());
    ASSERT_EQ(solo_outputs.size(), sharded3_outputs.size());
    for (std::size_t i = 0; i < solo_outputs.size(); ++i) {
        EXPECT_EQ(solo_outputs[i], packed_outputs[i])
            << batch[i].name << " (seed " << seed << ")";
        EXPECT_EQ(solo_outputs[i], sharded1_outputs[i])
            << batch[i].name << " 1-shard (seed " << seed << ")";
        EXPECT_EQ(solo_outputs[i], sharded3_outputs[i])
            << batch[i].name << " 3-shard (seed " << seed << ")";
    }
}

// ---- the fuzz harness (quick variants; CI default) --------------------

TEST(LaneFuzzTest, PackedVsSoloBitIdentityWhenCertified)
{
    fuzzPackedVsSolo(/*seed=*/0xC0FFEE, /*iterations=*/120);
}

TEST(LaneFuzzTest, CompositeVsSoloBitIdentityWhenCertified)
{
    fuzzCompositeVsSolo(/*seed=*/0xBEEF, /*iterations=*/60);
}

TEST(LaneFuzzTest, ServicePackedVsSoloOverRandomDsl)
{
    fuzzServiceVsSolo(/*seed=*/0xFACADE, /*num_kernels=*/6);
}

TEST(LaneFuzzTest, ServicePackedVsSoloWithModSwitch)
{
    fuzzServiceVsSolo(/*seed=*/0xFACADE, /*num_kernels=*/6,
                      /*mod_switch=*/true);
}

/// Restores the process-wide NTT SIMD switch when it goes out of scope.
struct ScopedSimd
{
    explicit ScopedSimd(bool enabled) : saved(fhe::simdEnabled())
    {
        fhe::setSimdEnabled(enabled);
    }
    ~ScopedSimd() { fhe::setSimdEnabled(saved); }
    bool saved;
};

/// The whole packed/composite/sharded differential harness must hold on
/// the scalar NTT path too (on an AVX2 build this is the only coverage
/// of the scalar kernels under real service traffic).
TEST(LaneFuzzTest, ServicePackedVsSoloSimdForcedOff)
{
    ScopedSimd guard(false);
    fuzzServiceVsSolo(/*seed=*/0x5CA1A, /*num_kernels=*/4);
}

TEST(LaneFuzzTest, ServicePackedVsSoloSimdForcedOn)
{
    // Clamped to a no-op on scalar builds (setSimdEnabled clamps to
    // simdSupported), so this leg is safe in the no-AVX2 CI matrix leg.
    ScopedSimd guard(true);
    fuzzServiceVsSolo(/*seed=*/0x5CA1A, /*num_kernels=*/4);
}

/// Cross-mode determinism at the service boundary: one batch, the same
/// service configuration, SIMD forced on then off — decoded outputs
/// must be bit-identical (the PR 10 determinism-contract extension).
TEST(LaneFuzzTest, ServiceOutputsInvariantUnderSimdDispatch)
{
    std::vector<RunRequest> batch;
    const char* kernels[] = {
        "(* (+ a b) (- c 2))",
        "(<< (Vec a b c d) 1)",
        "(+ (* a a) (* b (- c d)))",
    };
    int k = 0;
    for (const char* text : kernels) {
        RunRequest request;
        request.name = "simd-k" + std::to_string(k++);
        request.source = ir::parse(text);
        request.pipeline = compiler::DriverConfig::greedy({}, 12);
        for (char v = 'a'; v <= 'f'; ++v) {
            request.inputs[std::string(1, v)] = (v - 'a') * 5 + 2;
        }
        request.key_budget = 0;
        request.params = fuzzParams();
        batch.push_back(std::move(request));
    }
    auto outputsWithSimd = [&batch](bool simd) {
        ScopedSimd guard(simd);
        ServiceConfig config;
        config.num_workers = 2;
        CompileService service(config);
        std::vector<std::vector<std::int64_t>> outputs;
        for (RunResponse& response : service.runBatch(batch)) {
            EXPECT_TRUE(response.ok)
                << response.name << ": " << response.error;
            outputs.push_back(std::move(response.result.output));
        }
        return outputs;
    };
    EXPECT_EQ(outputsWithSimd(true), outputsWithSimd(false));
}

// ---- heavy variants (ctest label: slow) -------------------------------

TEST(LaneFuzzHeavyTest, PackedVsSoloManySeeds)
{
    for (std::uint32_t seed : {7u, 1337u, 424242u}) {
        fuzzPackedVsSolo(seed, /*iterations=*/250);
    }
}

TEST(LaneFuzzHeavyTest, CompositeVsSoloManySeeds)
{
    for (std::uint32_t seed : {11u, 2025u}) {
        fuzzCompositeVsSolo(seed, /*iterations=*/150);
    }
}

TEST(LaneFuzzHeavyTest, ServicePackedVsSoloManySeeds)
{
    for (std::uint32_t seed : {3u, 99u}) {
        fuzzServiceVsSolo(seed, /*num_kernels=*/10);
    }
}

TEST(LaneFuzzHeavyTest, ServicePackedVsSoloManySeedsWithModSwitch)
{
    for (std::uint32_t seed : {3u, 99u, 7771u}) {
        fuzzServiceVsSolo(seed, /*num_kernels=*/10, /*mod_switch=*/true);
    }
}

// ---- directed regressions: rotation margins ---------------------------

/// Width-4 zero-tailed pack rotated by a NAF-decomposed step whose
/// sequence contains a negative component (7 -> {-1, 8}). The
/// component-wise dataflow used to lose the zero tail at the
/// intermediate step and demand stride 16; the net-displacement rule
/// certifies stride 8 — and the packed bits prove it sound.
TEST(LaneFuzzTest, NafNegativeComponentCertifiesAtNetStride)
{
    FheProgram program;
    FheInstr pack;
    pack.op = FheOpcode::PackCipher;
    pack.dst = 0;
    for (int i = 0; i < 4; ++i) {
        PackSlot slot;
        slot.kind = PackSlot::Kind::CtVar;
        slot.name = "v" + std::to_string(i);
        pack.slots.push_back(std::move(slot));
    }
    program.instrs.push_back(std::move(pack));
    FheInstr rot;
    rot.op = FheOpcode::Rotate;
    rot.a = 0;
    rot.dst = 1;
    rot.step = 7;
    program.instrs.push_back(std::move(rot));
    program.num_regs = 2;
    program.output_reg = 1;
    program.output_width = 1;

    RotationKeyPlan plan;
    plan.keys = {-1, 8};
    plan.decomposition[7] = {-1, 8};
    const LaneFit fit = analyzeLaneFit(program, plan, kRowSlots);
    ASSERT_TRUE(fit.safe) << fit.reason;
    EXPECT_EQ(fit.stride, 8);

    std::vector<ir::Env> envs;
    for (int l = 0; l < 3; ++l) {
        GenProgram gen;
        gen.num_vars = 4;
        envs.push_back(fuzzInputs(gen, l));
    }
    EXPECT_TRUE(expectPackedMatchesSolo(program, plan, fit.stride, envs,
                                        "naf step 7"));
}

/// A *negative* rotation of a zero-tailed pack, decomposed into a
/// mixed-sign NAF sequence (-3 -> {1, -4}). Component-wise margins
/// refused this outright (the intermediate left rotation destroyed the
/// zero tail, so the right component dirtied the readout base); the
/// net rule certifies it, because the net displacement only drags
/// provable zeros into the lane.
TEST(LaneFuzzTest, NegativeNafStepCertifies)
{
    FheProgram program;
    FheInstr pack;
    pack.op = FheOpcode::PackCipher;
    pack.dst = 0;
    for (int i = 0; i < 4; ++i) {
        PackSlot slot;
        slot.kind = PackSlot::Kind::CtVar;
        slot.name = "v" + std::to_string(i);
        pack.slots.push_back(std::move(slot));
    }
    program.instrs.push_back(std::move(pack));
    FheInstr rot;
    rot.op = FheOpcode::Rotate;
    rot.a = 0;
    rot.dst = 1;
    rot.step = -3;
    program.instrs.push_back(std::move(rot));
    program.num_regs = 2;
    program.output_reg = 1;
    program.output_width = 4;

    RotationKeyPlan plan;
    plan.keys = {1, -4};
    plan.decomposition[-3] = {1, -4};
    const LaneFit fit = analyzeLaneFit(program, plan, kRowSlots);
    ASSERT_TRUE(fit.safe) << fit.reason;
    EXPECT_EQ(fit.stride, 8);

    std::vector<ir::Env> envs;
    for (int l = 0; l < 2; ++l) {
        GenProgram gen;
        gen.num_vars = 4;
        envs.push_back(fuzzInputs(gen, l));
    }
    EXPECT_TRUE(expectPackedMatchesSolo(program, plan, fit.stride, envs,
                                        "naf step -3"));
}

/// Left-rotation margin wraparound: a decomposition whose intermediate
/// rotation sweeps past the whole lane region ({8, -5}, net 3) must
/// stay exact — whole-row rotations compose exactly, so the analysis
/// may treat the sequence as its net — and a rotation whose *net*
/// reaches the region boundary must refuse at that stride and certify
/// only at the next.
TEST(LaneFuzzTest, LeftRotationMarginWraparound)
{
    FheProgram program;
    FheInstr pack;
    pack.op = FheOpcode::PackCipher;
    pack.dst = 0;
    for (int i = 0; i < 4; ++i) {
        PackSlot slot;
        slot.kind = PackSlot::Kind::CtVar;
        slot.name = "v" + std::to_string(i);
        pack.slots.push_back(std::move(slot));
    }
    program.instrs.push_back(std::move(pack));
    FheInstr rot;
    rot.op = FheOpcode::Rotate;
    rot.a = 0;
    rot.dst = 1;
    rot.step = 3;
    program.instrs.push_back(std::move(rot));
    program.num_regs = 2;
    program.output_reg = 1;
    program.output_width = 1;

    // Custom plan: 3 realized as a wraparound sequence {8, -5}.
    RotationKeyPlan plan;
    plan.keys = {8, -5};
    plan.decomposition[3] = {8, -5};
    const LaneFit fit = analyzeLaneFit(program, plan, kRowSlots);
    ASSERT_TRUE(fit.safe) << fit.reason;
    // Net 3 leaves exactly one clean slot at stride 4 (the pack width),
    // which is all the width-1 readout needs.
    EXPECT_EQ(fit.stride, 4);
    std::vector<ir::Env> envs;
    for (int l = 0; l < 2; ++l) {
        GenProgram gen;
        gen.num_vars = 4;
        envs.push_back(fuzzInputs(gen, l));
    }
    EXPECT_TRUE(expectPackedMatchesSolo(program, plan, fit.stride, envs,
                                        "wraparound sequence {8,-5}"));

    // Net displacement = the whole stride: every slot of the region is
    // dragged across the boundary, so stride 8 must refuse; 16 pads
    // enough clean slots.
    program.instrs[1].step = 8;
    RotationKeyPlan wide;
    wide.keys = {8};
    wide.decomposition[8] = {8};
    const LaneFit refused = analyzeLaneFit(program, wide, 8 * 2);
    EXPECT_FALSE(refused.safe);
    EXPECT_FALSE(refused.reason.empty());
    const LaneFit wider = analyzeLaneFit(program, wide, kRowSlots);
    ASSERT_TRUE(wider.safe) << wider.reason;
    EXPECT_EQ(wider.stride, 16);
}

/// The periodicity guard: a replicated constant mask whose width does
/// not divide the candidate stride is NOT rotation-exact (per-region
/// replication restarts the phase each region; the solo row's period
/// runs straight through), so rotating one must not certify on the
/// uniform fast path.
TEST(LaneFuzzTest, NonDividingReplicatedMaskIsNotPeriodic)
{
    FheProgram program;
    FheInstr pack;
    pack.op = FheOpcode::PackCipher;
    pack.dst = 0;
    pack.replicate = true;
    for (std::int64_t v : {1, 2, 3}) { // Width 3: divides no pow2 stride.
        PackSlot slot;
        slot.kind = PackSlot::Kind::Const;
        slot.value = v;
        pack.slots.push_back(std::move(slot));
    }
    program.instrs.push_back(std::move(pack));
    FheInstr rot;
    rot.op = FheOpcode::Rotate;
    rot.a = 0;
    rot.dst = 1;
    rot.step = 2;
    program.instrs.push_back(std::move(rot));
    program.num_regs = 2;
    program.output_reg = 1;
    program.output_width = 4;

    const RotationKeyPlan plan = compiler::effectiveKeyPlan(program, 0);
    const LaneFit fit = analyzeLaneFit(program, plan, kRowSlots);
    // Certification via the dirty-margin rules (at some stride) is
    // fine; what must NOT happen is the uniform-periodic shortcut
    // certifying the smallest stride where packed and solo rows
    // disagree. Verify whatever was certified against the runtime.
    if (fit.safe) {
        std::vector<ir::Env> envs(2);
        EXPECT_TRUE(expectPackedMatchesSolo(program, plan, fit.stride,
                                            envs, "width-3 mask"));
    } else {
        EXPECT_FALSE(fit.reason.empty());
    }
}

} // namespace
} // namespace chehab::service
