/// \file
/// Tests for the service's execute path: compile-then-run correctness
/// against the reference evaluator, FheRuntime pooling determinism
/// (identical outputs *and noise accounting* at 1 vs 8 workers),
/// key-budget decomposed-rotation correctness under the pool, run-cache
/// single-flight accounting, and LRU eviction bounds on both caches.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "benchsuite/kernels.h"
#include "ir/evaluator.h"
#include "ir/parser.h"
#include "service/compile_service.h"

namespace chehab::service {
namespace {

fhe::SealLiteParams
smallParams()
{
    fhe::SealLiteParams params;
    params.n = 256;
    params.prime_count = 4;
    params.seed = 17;
    return params;
}

/// Deterministic inputs: the shared benchsuite generator, so tests,
/// chehabd --run and the execute benches agree on values.
ir::Env
inputsFor(const ir::ExprPtr& program)
{
    return benchsuite::syntheticInputs(program);
}

RunRequest
runRequest(const std::string& name, const std::string& source,
           int max_steps = 20, int key_budget = 0)
{
    RunRequest request;
    request.name = name;
    request.source = ir::parse(source);
    request.pipeline = compiler::DriverConfig::greedy({}, max_steps);
    request.inputs = inputsFor(request.source);
    request.key_budget = key_budget;
    request.params = smallParams();
    return request;
}

std::string
dotSource(int n, const std::string& prefix = "")
{
    std::string sum;
    for (int i = 0; i < n; ++i) {
        const std::string a = prefix + "a" + std::to_string(i);
        const std::string b = prefix + "b" + std::to_string(i);
        const std::string term = "(* " + a + " " + b + ")";
        sum = i == 0 ? term : "(+ " + sum + " " + term + ")";
    }
    return sum;
}

void
expectMatchesReference(const RunResponse& response,
                       const ir::ExprPtr& source, const ir::Env& env)
{
    ASSERT_TRUE(response.ok) << response.name << ": " << response.error;
    const ir::Value expected = ir::Evaluator().evaluate(source, env);
    if (expected.is_vector) {
        ASSERT_EQ(static_cast<int>(response.result.output.size()),
                  expected.width())
            << response.name;
        for (std::size_t i = 0; i < response.result.output.size(); ++i) {
            EXPECT_EQ(response.result.output[i], expected.slots[i])
                << response.name << " slot " << i;
        }
    } else {
        // Scalar sources may be vectorized by the TRS (rotate-reduce);
        // slot 0 carries the semantic result either way.
        ASSERT_FALSE(response.result.output.empty()) << response.name;
        EXPECT_EQ(response.result.output[0], expected.slots[0])
            << response.name;
    }
    EXPECT_GT(response.result.final_noise_budget, 0) << response.name;
}

TEST(ServiceExecuteTest, RunProducesReferenceOutput)
{
    CompileService service({/*num_workers=*/2});
    RunRequest request = runRequest("dot", dotSource(4));
    const ir::ExprPtr source = request.source;
    const ir::Env env = request.inputs;
    std::vector<RunResponse> responses =
        service.runBatch({std::move(request)});
    ASSERT_EQ(responses.size(), 1u);
    expectMatchesReference(responses[0], source, env);
    EXPECT_FALSE(responses[0].run_cache_hit);
    EXPECT_GE(responses[0].worker_id, 0);
    EXPECT_GT(responses[0].result.consumed_noise, 0);

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.run_submitted, 1u);
    EXPECT_EQ(stats.executed, 1u);
    EXPECT_EQ(stats.compiled, 1u);
    EXPECT_GE(stats.runtimes_created, 1u);
}

TEST(ServiceExecuteTest, DeterministicAcrossWorkerCounts)
{
    // The satellite acceptance test: the same request batch must yield
    // bit-identical outputs AND noise accounting at 1 and 8 workers,
    // even though pooled runtimes are reused in a scheduling-dependent
    // order.
    const std::vector<std::string> sources = {
        dotSource(4),
        dotSource(3, "z"),
        "(VecAdd (VecMul (Vec x y) (Vec u v)) (Vec p q))",
        "(<< (Vec a b c d e) 2)",
        dotSource(5, "k"),
    };

    struct Snapshot
    {
        std::vector<std::int64_t> output;
        int fresh = 0;
        int final_budget = 0;
        int consumed = 0;
        int keys = 0;
    };

    auto runAll = [&sources](int workers) {
        std::vector<RunRequest> batch;
        for (std::size_t i = 0; i < sources.size(); ++i) {
            batch.push_back(
                runRequest("k" + std::to_string(i), sources[i]));
        }
        // Duplicates sprinkled in so cache-served runs are compared too.
        batch.push_back(runRequest("k0dup", sources[0]));
        batch.push_back(runRequest("k3dup", sources[3]));
        std::map<std::string, Snapshot> by_name;
        for (RunResponse& response :
             CompileService({workers}).runBatch(std::move(batch))) {
            EXPECT_TRUE(response.ok)
                << response.name << ": " << response.error;
            Snapshot snap;
            snap.output = response.result.output;
            snap.fresh = response.result.fresh_noise_budget;
            snap.final_budget = response.result.final_noise_budget;
            snap.consumed = response.result.consumed_noise;
            snap.keys = response.result.rotation_keys;
            by_name[response.name] = snap;
        }
        return by_name;
    };

    const auto serial = runAll(1);
    const auto wide = runAll(8);
    ASSERT_EQ(serial.size(), wide.size());
    for (const auto& [name, snap] : serial) {
        ASSERT_TRUE(wide.count(name)) << name;
        const Snapshot& other = wide.at(name);
        EXPECT_EQ(snap.output, other.output) << name;
        EXPECT_EQ(snap.fresh, other.fresh) << name;
        EXPECT_EQ(snap.final_budget, other.final_budget) << name;
        EXPECT_EQ(snap.consumed, other.consumed) << name;
        EXPECT_EQ(snap.keys, other.keys) << name;
        EXPECT_FALSE(snap.output.empty()) << name;
    }
    // Duplicates resolve to the same result as their originals.
    EXPECT_EQ(serial.at("k0").output, serial.at("k0dup").output);
    EXPECT_EQ(serial.at("k3").output, serial.at("k3dup").output);
}

TEST(ServiceExecuteTest, DeterministicAcrossWorkerCountsWithModSwitch)
{
    // Same 1-vs-8 contract with the mod-switch pass in the pipeline:
    // the noise gate decides drops from (program, plan, params) alone,
    // so outputs, budgets AND the drop count must be bit-identical no
    // matter which pooled runtime each request lands on.
    const std::vector<std::string> sources = {
        dotSource(4),
        dotSource(3, "z"),
        "(VecAdd (VecMul (Vec x y) (Vec u v)) (Vec p q))",
        dotSource(5, "k"),
    };

    struct Snapshot
    {
        std::vector<std::int64_t> output;
        int final_budget = 0;
        int drops = 0;
    };

    auto runAll = [&sources](int workers) {
        std::vector<RunRequest> batch;
        for (std::size_t i = 0; i < sources.size(); ++i) {
            RunRequest request =
                runRequest("k" + std::to_string(i), sources[i]);
            request.pipeline.passes.push_back("mod-switch");
            batch.push_back(std::move(request));
        }
        std::map<std::string, Snapshot> by_name;
        for (RunResponse& response :
             CompileService({workers}).runBatch(std::move(batch))) {
            EXPECT_TRUE(response.ok)
                << response.name << ": " << response.error;
            by_name[response.name] = {response.result.output,
                                      response.result.final_noise_budget,
                                      response.result.mod_switch_drops};
        }
        return by_name;
    };

    const auto serial = runAll(1);
    const auto wide = runAll(8);
    ASSERT_EQ(serial.size(), wide.size());
    int total_drops = 0;
    for (const auto& [name, snap] : serial) {
        ASSERT_TRUE(wide.count(name)) << name;
        const Snapshot& other = wide.at(name);
        EXPECT_EQ(snap.output, other.output) << name;
        EXPECT_EQ(snap.final_budget, other.final_budget) << name;
        EXPECT_EQ(snap.drops, other.drops) << name;
        EXPECT_GT(snap.final_budget, 0) << name;
        total_drops += snap.drops;
    }
    // The suite is chosen so the gate actually fires somewhere —
    // otherwise this test degenerates into the plain variant.
    EXPECT_GT(total_drops, 0);

    // And against the reference semantics: drops never change decoded
    // outputs relative to the no-mod-switch pipeline.
    std::vector<RunRequest> plain;
    for (std::size_t i = 0; i < sources.size(); ++i) {
        plain.push_back(runRequest("k" + std::to_string(i), sources[i]));
    }
    for (RunResponse& response :
         CompileService({2}).runBatch(std::move(plain))) {
        ASSERT_TRUE(response.ok) << response.error;
        EXPECT_EQ(response.result.mod_switch_drops, 0);
        EXPECT_EQ(response.result.output,
                  serial.at(response.name).output)
            << response.name;
    }
}

TEST(ServiceExecuteTest, KeyBudgetDecomposedRotationsCorrectUnderPool)
{
    // Rotations by 3 and 5 decompose under a tight key budget; the
    // decomposed sequences must still be correct when executed on
    // pooled runtimes by many workers at once.
    const std::string source =
        "(VecAdd (<< (Vec a b c d e f g h) 3)"
        "        (<< (Vec a b c d e f g h) 5))";
    CompileService service({/*num_workers=*/8});
    std::vector<RunRequest> batch;
    for (int i = 0; i < 6; ++i) {
        batch.push_back(runRequest("r" + std::to_string(i), source,
                                   /*max_steps=*/5, /*key_budget=*/3));
    }
    const ir::ExprPtr parsed = ir::parse(source);
    const ir::Env env = inputsFor(parsed);
    std::vector<RunResponse> responses =
        service.runBatch(std::move(batch));
    for (const RunResponse& response : responses) {
        expectMatchesReference(response, parsed, env);
        EXPECT_LE(response.result.rotation_keys, 3) << response.name;
    }
    // Identical requests executed once (single-flight run dedup).
    EXPECT_EQ(service.stats().executed, 1u);
}

TEST(ServiceExecuteTest, KeySelectPipelinePlanWins)
{
    // A pipeline with the key-select pass carries its plan into
    // execution; the request-level budget is ignored.
    const std::string source =
        "(VecAdd (<< (Vec a b c d e f g h) 3)"
        "        (<< (Vec a b c d e f g h) 5))";
    RunRequest request = runRequest("planned", source, /*max_steps=*/5);
    request.pipeline.passes.push_back("key-select");
    request.pipeline.key_budget = 3;
    request.key_budget = 0; // Would mean one key per step if honored.
    const ir::ExprPtr parsed = ir::parse(source);
    const ir::Env env = request.inputs;

    CompileService service({/*num_workers=*/2});
    std::vector<RunResponse> responses =
        service.runBatch({std::move(request)});
    ASSERT_EQ(responses.size(), 1u);
    expectMatchesReference(responses[0], parsed, env);
    EXPECT_TRUE(responses[0].compiled.key_planned);
    EXPECT_LE(responses[0].result.rotation_keys, 3);
}

TEST(ServiceExecuteTest, RunCacheHitOnRepeat)
{
    CompileService service({/*num_workers=*/2});
    RunRequest request = runRequest("dot", dotSource(4));
    std::vector<RunResponse> first = service.runBatch({request});
    ASSERT_TRUE(first[0].ok) << first[0].error;
    std::vector<RunResponse> second = service.runBatch({request});
    ASSERT_TRUE(second[0].ok) << second[0].error;
    EXPECT_TRUE(second[0].run_cache_hit);
    EXPECT_TRUE(second[0].compile_cache_hit);
    EXPECT_EQ(second[0].result.output, first[0].result.output);

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.executed, 1u);
    EXPECT_EQ(stats.compiled, 1u);
    EXPECT_EQ(stats.run_cache.hits, 1u);
}

TEST(ServiceExecuteTest, DifferentInputsAreDistinctRuns)
{
    CompileService service({/*num_workers=*/2});
    RunRequest base = runRequest("a", dotSource(3));
    RunRequest changed = base;
    changed.name = "b";
    changed.inputs.begin()->second += 1;
    std::vector<RunResponse> responses =
        service.runBatch({base, changed});
    ASSERT_TRUE(responses[0].ok);
    ASSERT_TRUE(responses[1].ok);
    EXPECT_NE(responses[0].result.output, responses[1].result.output);
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.executed, 2u); // Two runs...
    EXPECT_EQ(stats.compiled, 1u); // ...sharing one compile.
}

TEST(ServiceExecuteTest, CompileSharedBetweenCompileAndRunPaths)
{
    CompileService service({/*num_workers=*/2});
    CompileRequest compile_request;
    compile_request.name = "c";
    compile_request.source = ir::parse(dotSource(4));
    compile_request.pipeline = compiler::DriverConfig::greedy({}, 20);
    std::vector<CompileResponse> compiled =
        service.compileBatch({std::move(compile_request)});
    ASSERT_TRUE(compiled[0].ok) << compiled[0].error;

    std::vector<RunResponse> runs =
        service.runBatch({runRequest("r", dotSource(4))});
    ASSERT_TRUE(runs[0].ok) << runs[0].error;
    EXPECT_TRUE(runs[0].compile_cache_hit);
    EXPECT_EQ(service.stats().compiled, 1u);
    EXPECT_EQ(runs[0].compiled.program.disassemble(),
              compiled[0].compiled.program.disassemble());
}

TEST(ServiceExecuteTest, CompileFailurePropagatesToRun)
{
    CompileService service({/*num_workers=*/1});
    RunRequest request = runRequest("rl", dotSource(3));
    request.pipeline = compiler::DriverConfig::rl();
    std::vector<RunResponse> responses =
        service.runBatch({std::move(request)});
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_FALSE(responses[0].ok);
    EXPECT_NE(responses[0].error.find("RL agent"), std::string::npos);
    EXPECT_EQ(service.stats().run_failed, 1u);
}

TEST(ServiceExecuteTest, MissingInputFailsGracefully)
{
    CompileService service({/*num_workers=*/2});
    RunRequest request = runRequest("missing", dotSource(3));
    request.inputs.erase("a0");
    std::vector<RunResponse> responses =
        service.runBatch({std::move(request)});
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_FALSE(responses[0].ok);
    EXPECT_NE(responses[0].error.find("a0"), std::string::npos);
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.run_failed, 1u);
    EXPECT_EQ(stats.compiled, 1u); // The compile itself succeeded.
}

TEST(ServiceExecuteTest, NullSourceRejectedOnSubmitRun)
{
    CompileService service({/*num_workers=*/1});
    RunRequest request;
    request.name = "null";
    std::vector<RunResponse> responses =
        service.runBatch({std::move(request)});
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_FALSE(responses[0].ok);
    EXPECT_FALSE(responses[0].error.empty());
}

// ---- LRU bounding ---------------------------------------------------

TEST(ServiceExecuteTest, CompileCacheLruEviction)
{
    ServiceConfig config;
    config.num_workers = 2;
    config.kernel_cache_capacity = 2;
    CompileService service(config);

    auto compileOne = [&service](const std::string& name,
                                 const std::string& source) {
        CompileRequest request;
        request.name = name;
        request.source = ir::parse(source);
        request.pipeline = compiler::DriverConfig::greedy({}, 10);
        std::vector<CompileResponse> responses =
            service.compileBatch({std::move(request)});
        ASSERT_TRUE(responses[0].ok) << responses[0].error;
    };

    compileOne("a", dotSource(3));
    compileOne("b", dotSource(3, "y"));
    compileOne("c", dotSource(3, "z")); // Evicts the LRU entry ("a").

    ServiceStats stats = service.stats();
    EXPECT_EQ(stats.cache.evictions, 1u);
    EXPECT_LE(stats.cache.resident, 2u);
    EXPECT_EQ(stats.compiled, 3u);

    // Re-requesting the evicted kernel is a miss and recompiles.
    compileOne("a2", dotSource(3));
    stats = service.stats();
    EXPECT_EQ(stats.compiled, 4u);
    EXPECT_EQ(stats.cache.evictions, 2u);
    EXPECT_LE(stats.cache.resident, 2u);

    // A still-resident kernel is a hit, not a recompile.
    compileOne("c2", dotSource(3, "z"));
    stats = service.stats();
    EXPECT_EQ(stats.compiled, 4u);
    EXPECT_EQ(stats.cache.hits, 1u);
}

TEST(ServiceExecuteTest, RunCacheLruEviction)
{
    ServiceConfig config;
    config.num_workers = 2;
    config.run_cache_capacity = 1;
    CompileService service(config);

    RunRequest a = runRequest("a", dotSource(3));
    RunRequest b = runRequest("b", dotSource(3, "y"));
    ASSERT_TRUE(service.runBatch({a})[0].ok);
    ASSERT_TRUE(service.runBatch({b})[0].ok); // Evicts a's run entry.

    ServiceStats stats = service.stats();
    EXPECT_EQ(stats.run_cache.evictions, 1u);
    EXPECT_LE(stats.run_cache.resident, 1u);

    // Re-running "a" re-executes (its run entry is gone) but reuses the
    // still-cached compile.
    std::vector<RunResponse> again = service.runBatch({a});
    ASSERT_TRUE(again[0].ok);
    EXPECT_FALSE(again[0].run_cache_hit);
    EXPECT_TRUE(again[0].compile_cache_hit);
    stats = service.stats();
    EXPECT_EQ(stats.executed, 3u);
    EXPECT_EQ(stats.compiled, 2u);
}

TEST(ServiceExecuteTest, RunCacheHitSurvivesCompileEviction)
{
    // A run-cache hit must not touch the kernel cache: when the compile
    // entry was LRU-evicted after the run settled, re-serving the run
    // from its cache must not schedule a recompile nothing consumes.
    ServiceConfig config;
    config.num_workers = 2;
    config.kernel_cache_capacity = 1;
    CompileService service(config);

    RunRequest a = runRequest("a", dotSource(3));
    RunRequest b = runRequest("b", dotSource(3, "y"));
    ASSERT_TRUE(service.runBatch({a})[0].ok);
    ASSERT_TRUE(service.runBatch({b})[0].ok); // Evicts a's compile entry.
    ASSERT_EQ(service.stats().cache.evictions, 1u);

    std::vector<RunResponse> again = service.runBatch({a});
    ASSERT_TRUE(again[0].ok);
    EXPECT_TRUE(again[0].run_cache_hit);
    EXPECT_TRUE(again[0].compile_cache_hit); // Mirrors run provenance.
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.compiled, 2u);  // No dead recompile of "a".
    EXPECT_EQ(stats.executed, 2u);
    EXPECT_EQ(stats.cache.misses, 2u);
}

TEST(ServiceExecuteTest, PendingEntriesAreNotEvicted)
{
    // Capacity 1 with a burst of distinct in-flight kernels: the cache
    // may transiently exceed its bound (pending entries are protected),
    // then settles back under it as eviction catches up on later
    // admissions. All responses must be correct.
    ServiceConfig config;
    config.num_workers = 4;
    config.kernel_cache_capacity = 1;
    CompileService service(config);
    std::vector<RunRequest> batch;
    for (int i = 0; i < 6; ++i) {
        batch.push_back(runRequest("k" + std::to_string(i),
                                   dotSource(3, "v" + std::to_string(i))));
    }
    std::vector<RunResponse> responses =
        service.runBatch(std::move(batch));
    for (const RunResponse& response : responses) {
        EXPECT_TRUE(response.ok)
            << response.name << ": " << response.error;
    }
}

} // namespace
} // namespace chehab::service
