/// \file
/// PolyArena semantics and the arena/in-place determinism contract:
/// acquire/release/reuse accounting, best-fit selection, the
/// zero-steady-state guarantee after one priming pass, an 8-thread
/// acquire/release stress (the TSan job runs this file), and
/// bit-identity differentials — arena on vs off and in-place vs copying
/// evaluation — at 1 and 8 workers.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "benchsuite/kernels.h"
#include "compiler/pipeline.h"
#include "compiler/runtime.h"
#include "fhe/poly_arena.h"
#include "fhe/sealite.h"

namespace chehab {
namespace {

// -- PolyArena unit semantics ------------------------------------------

TEST(PolyArenaTest, AcquireReleaseReuse)
{
    fhe::PolyArena arena;
    auto buffer = arena.acquire(256);
    EXPECT_EQ(buffer.size(), 256u);
    EXPECT_EQ(arena.stats().allocs, 1u);
    EXPECT_EQ(arena.stats().reuses, 0u);
    EXPECT_EQ(arena.stats().bytes, 256u * 8u);

    arena.release(std::move(buffer));
    auto again = arena.acquire(256);
    EXPECT_EQ(arena.stats().allocs, 1u);
    EXPECT_EQ(arena.stats().reuses, 1u);

    // A smaller request reuses (and shrinks) a pooled buffer too.
    arena.release(std::move(again));
    auto smaller = arena.acquire(64);
    EXPECT_EQ(smaller.size(), 64u);
    EXPECT_EQ(arena.stats().allocs, 1u);
    EXPECT_EQ(arena.stats().reuses, 2u);
}

TEST(PolyArenaTest, BestFitKeepsLargeBuffersForLargeRequests)
{
    fhe::PolyArena arena;
    auto large = arena.acquire(4096);
    auto small = arena.acquire(64);
    arena.release(std::move(large));
    arena.release(std::move(small));

    // The small request must take the 64-word buffer, leaving the
    // 4096-word one for the large request: first-fit here would force
    // the second acquire to mint.
    auto a = arena.acquire(64);
    auto b = arena.acquire(4096);
    EXPECT_EQ(arena.stats().allocs, 2u);
    EXPECT_EQ(arena.stats().reuses, 2u);
    EXPECT_GE(b.capacity(), 4096u);
}

TEST(PolyArenaTest, AcquireZeroedClearsRecycledContents)
{
    fhe::PolyArena arena;
    auto buffer = arena.acquire(32);
    for (auto& w : buffer) w = ~0ULL;
    arena.release(std::move(buffer));
    const auto zeroed = arena.acquireZeroed(32);
    EXPECT_EQ(arena.stats().reuses, 1u);
    for (const std::uint64_t w : zeroed) EXPECT_EQ(w, 0u);
}

TEST(PolyArenaTest, DisabledArenaAlwaysMints)
{
    fhe::PolyArena arena;
    arena.setEnabled(false);
    EXPECT_FALSE(arena.enabled());
    auto buffer = arena.acquire(128);
    arena.release(std::move(buffer));
    auto again = arena.acquire(128);
    EXPECT_EQ(arena.stats().allocs, 2u);
    EXPECT_EQ(arena.stats().reuses, 0u);
    (void)again;
}

TEST(PolyArenaTest, EightThreadAcquireReleaseStress)
{
    // One shared arena hammered from 8 workers with mixed sizes: the
    // TSan leg runs this to pin the locking discipline; the accounting
    // identity (every acquire is exactly one alloc or one reuse) must
    // hold regardless of interleaving.
    fhe::PolyArena arena;
    constexpr int kWorkers = 8;
    constexpr int kIters = 400;
    std::vector<std::thread> workers;
    workers.reserve(kWorkers);
    for (int t = 0; t < kWorkers; ++t) {
        workers.emplace_back([&arena, t] {
            const std::size_t sizes[] = {32, 64, 1024, 4096};
            for (int i = 0; i < kIters; ++i) {
                const std::size_t words =
                    sizes[static_cast<std::size_t>(i + t) % 4];
                auto buffer = arena.acquire(words);
                buffer[0] = static_cast<std::uint64_t>(t);
                buffer[words - 1] = static_cast<std::uint64_t>(i);
                arena.release(std::move(buffer));
            }
        });
    }
    for (auto& worker : workers) worker.join();
    const fhe::PolyArena::Stats stats = arena.stats();
    EXPECT_EQ(stats.allocs + stats.reuses,
              static_cast<std::uint64_t>(kWorkers) * kIters);
    EXPECT_GT(stats.reuses, 0u);
}

// -- zero-steady-state through the scheme ------------------------------

TEST(PolyArenaTest, SchemeReachesZeroAllocsAfterPriming)
{
    fhe::SealLite scheme;
    const fhe::Plaintext plain = scheme.encode({1, 2, 3, 4});
    const fhe::Ciphertext ct = scheme.encrypt(plain);

    // Priming pass: first multiply mints every size class it needs.
    scheme.recycle(scheme.multiply(ct, ct));
    const fhe::PolyArena::Stats primed = scheme.arenaStats();
    for (int i = 0; i < 8; ++i) {
        scheme.recycle(scheme.multiply(ct, ct));
    }
    const fhe::PolyArena::Stats steady = scheme.arenaStats();
    EXPECT_EQ(steady.allocs, primed.allocs)
        << "steady-state multiplies minted fresh buffers";
    EXPECT_GT(steady.reuses, primed.reuses);
}

// -- determinism contract differentials --------------------------------

compiler::RunResult
runKernel(compiler::FheRuntime& runtime, const benchsuite::Kernel& kernel)
{
    const compiler::Compiled compiled =
        compiler::compileNoOpt(kernel.program);
    return runtime.run(compiled.program,
                       benchsuite::syntheticInputs(kernel.program));
}

TEST(ArenaDifferentialTest, ArenaOnOffBitIdentical)
{
    const benchsuite::Kernel kernel = benchsuite::l2Distance(4);
    compiler::FheRuntime with_arena;
    compiler::FheRuntime without_arena;
    without_arena.scheme().setArenaEnabled(false);
    const compiler::RunResult on = runKernel(with_arena, kernel);
    const compiler::RunResult off = runKernel(without_arena, kernel);
    EXPECT_EQ(on.output, off.output);
    EXPECT_EQ(on.final_noise_budget, off.final_noise_budget);
}

TEST(ArenaDifferentialTest, InPlaceVsCopyingBitIdentical)
{
    // Two identically seeded runtimes: the encryption randomness
    // streams match, so any bit difference is the evaluator's fault.
    const benchsuite::Kernel kernel = benchsuite::polyReg(4);
    compiler::FheRuntime destructive;
    destructive.setInPlaceEnabled(true);
    const compiler::RunResult inplace = runKernel(destructive, kernel);
    EXPECT_GT(destructive.inPlaceStats().consumed, 0u);
    compiler::FheRuntime cloning;
    cloning.setInPlaceEnabled(false);
    const compiler::RunResult copying = runKernel(cloning, kernel);
    EXPECT_EQ(inplace.output, copying.output);
    EXPECT_EQ(inplace.final_noise_budget, copying.final_noise_budget);
}

TEST(ArenaDifferentialTest, EightWorkerMixedModesMatchReference)
{
    // 8 workers, every (arena, in-place) combination among them, each
    // on its own runtime: all must decode the reference output. This is
    // the "any worker count" leg of the determinism contract and the
    // TSan job's cross-thread arena exercise through the full scheme.
    const benchsuite::Kernel kernel = benchsuite::dotProduct(4);
    compiler::FheRuntime reference_runtime;
    const compiler::RunResult reference =
        runKernel(reference_runtime, kernel);

    constexpr int kWorkers = 8;
    std::vector<std::vector<std::int64_t>> outputs(kWorkers);
    std::vector<std::thread> workers;
    workers.reserve(kWorkers);
    for (int t = 0; t < kWorkers; ++t) {
        workers.emplace_back([&kernel, &outputs, t] {
            compiler::FheRuntime runtime;
            runtime.setInPlaceEnabled(t % 2 == 0);
            runtime.scheme().setArenaEnabled((t / 2) % 2 == 0);
            outputs[static_cast<std::size_t>(t)] =
                runKernel(runtime, kernel).output;
        });
    }
    for (auto& worker : workers) worker.join();
    for (int t = 0; t < kWorkers; ++t) {
        EXPECT_EQ(outputs[static_cast<std::size_t>(t)], reference.output)
            << "worker " << t;
    }
}

} // namespace
} // namespace chehab
