/// \file
/// Tests for the rewrite engine: action enumeration (the RL action space)
/// and the greedy best-improvement optimizer (the original CHEHAB
/// baseline of Fig. 12).
#include <gtest/gtest.h>

#include "ir/evaluator.h"
#include "ir/parser.h"
#include "trs/rewriter.h"

namespace chehab::trs {
namespace {

using ir::ExprPtr;
using ir::parse;

const Ruleset&
ruleset()
{
    static const Ruleset rs = buildChehabRuleset();
    return rs;
}

TEST(EnumerateActionsTest, ListsOnlyApplicableRules)
{
    const ExprPtr program = parse("(+ (* a b) (* a c))");
    const std::vector<RuleMatches> actions =
        enumerateActions(ruleset(), program);
    EXPECT_FALSE(actions.empty());
    for (const RuleMatches& rm : actions) {
        EXPECT_FALSE(rm.locations.empty());
        // Every advertised action must be applicable.
        for (std::size_t ordinal = 0; ordinal < rm.locations.size();
             ++ordinal) {
            EXPECT_NE(ruleset()[static_cast<std::size_t>(rm.rule_index)]
                          .applyAt(program, static_cast<int>(ordinal)),
                      nullptr);
        }
    }
    // comm-factor must be among them.
    bool has_factor = false;
    for (const RuleMatches& rm : actions) {
        if (ruleset()[static_cast<std::size_t>(rm.rule_index)].name() ==
            "comm-factor-ll") {
            has_factor = true;
        }
    }
    EXPECT_TRUE(has_factor);
}

TEST(EnumerateActionsTest, RespectsLocationCap)
{
    // Lots of commutativity sites.
    const ExprPtr program = parse(
        "(+ (+ (+ (+ (+ (+ a b) c) d) e) f) (+ (+ (+ g h) i) j))");
    for (const RuleMatches& rm : enumerateActions(ruleset(), program, 3)) {
        EXPECT_LE(rm.locations.size(), 3u);
    }
}

TEST(GreedyOptimizeTest, SimplifiesIdentities)
{
    const OptimizeResult result =
        greedyOptimize(ruleset(), parse("(+ (* x 1) 0)"));
    EXPECT_EQ(result.program->toString(), "x");
    EXPECT_LT(result.final_cost, result.initial_cost);
    EXPECT_GE(result.steps, 1);
}

TEST(GreedyOptimizeTest, VectorizesIsomorphicCode)
{
    const ExprPtr program = parse("(Vec (+ a b) (+ c d) (+ e f) (+ g h))");
    const OptimizeResult result = greedyOptimize(ruleset(), program);
    // One packed vector addition: cost 1 instead of 4x250.
    EXPECT_LE(result.final_cost, 10.0);
    EXPECT_TRUE(ir::equivalentOn(program, result.program, 8));
}

TEST(GreedyOptimizeTest, ReducesDotProduct)
{
    const ExprPtr program = parse(
        "(+ (+ (* a0 b0) (* a1 b1)) (+ (* a2 b2) (* a3 b3)))");
    const OptimizeResult result = greedyOptimize(ruleset(), program);
    EXPECT_TRUE(ir::equivalentOn(program, result.program, 8));
    // Far below the scalar cost of 7 * 250.
    EXPECT_LT(result.final_cost, 400.0);
}

TEST(GreedyOptimizeTest, StopsAtLocalOptimum)
{
    // Already optimal single variable: no steps taken.
    const OptimizeResult result = greedyOptimize(ruleset(), parse("x"));
    EXPECT_EQ(result.steps, 0);
    EXPECT_DOUBLE_EQ(result.final_cost, result.initial_cost);
}

TEST(GreedyOptimizeTest, HonoursStepBudget)
{
    const ExprPtr program = parse(
        "(Vec (+ a b) (+ c d) (+ e f) (+ g h) (+ i j) (+ k l))");
    const OptimizeResult result =
        greedyOptimize(ruleset(), program, {}, {}, /*max_steps=*/1);
    EXPECT_LE(result.steps, 1);
}

TEST(GreedyOptimizeTest, TraceMatchesStepCount)
{
    const OptimizeResult result =
        greedyOptimize(ruleset(), parse("(+ (* x 1) 0)"));
    EXPECT_EQ(static_cast<int>(result.trace.size()), result.steps);
}

TEST(GreedyOptimizeTest, WeightsInfluenceOutcome)
{
    // With heavy depth weights the optimizer should still be sound.
    const ExprPtr program =
        parse("(* a (* b (* c (* d (* e (* f (* g h)))))))");
    const ir::CostWeights heavy{1.0, 150.0, 150.0};
    const OptimizeResult result =
        greedyOptimize(ruleset(), program, heavy);
    EXPECT_TRUE(ir::equivalentOn(program, result.program, 8));
    EXPECT_LE(ir::multiplicativeDepth(result.program),
              ir::multiplicativeDepth(program));
}

} // namespace
} // namespace chehab::trs
