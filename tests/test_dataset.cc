/// \file
/// Dataset generation tests: validity, diversity, dedup, benchmark
/// exclusion and persistence (§6 post-processing pipeline).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <unordered_set>

#include "dataset/dataset.h"
#include "dataset/motif_gen.h"
#include "dataset/random_gen.h"
#include "ir/analysis.h"
#include "ir/parser.h"
#include "tokenizer/ici.h"

namespace chehab::dataset {
namespace {

TEST(RandomGenTest, ProducesWellTypedPrograms)
{
    RandomProgramGenerator gen(1);
    for (int i = 0; i < 100; ++i) {
        const ir::ExprPtr program = gen.generate();
        ASSERT_NE(program, nullptr);
        EXPECT_TRUE(ir::wellTyped(program));
    }
}

TEST(RandomGenTest, SweepsDepthAndWidth)
{
    RandomProgramGenerator gen(2);
    const ir::ExprPtr wide = gen.generateAt(2, 6);
    EXPECT_EQ(ir::outputWidth(wide), 6);
    const ir::ExprPtr scalar = gen.generateAt(3, 1);
    EXPECT_EQ(ir::outputWidth(scalar), 1);
}

TEST(RandomGenTest, DeterministicUnderSeed)
{
    RandomProgramGenerator a(7), b(7);
    for (int i = 0; i < 10; ++i) {
        EXPECT_TRUE(ir::equal(a.generate(), b.generate()));
    }
}

TEST(MotifGenTest, ProducesWellTypedPrograms)
{
    MotifSynthesizer synth(3);
    for (int i = 0; i < 200; ++i) {
        const ir::ExprPtr program = synth.generate();
        ASSERT_NE(program, nullptr);
        EXPECT_TRUE(ir::wellTyped(program)) << program->toString();
    }
}

TEST(MotifGenTest, ProducesDiverseCanonicalForms)
{
    MotifSynthesizer synth(4);
    std::unordered_set<std::string> canonical;
    for (int i = 0; i < 200; ++i) {
        canonical.insert(tokenizer::canonicalForm(synth.generate()));
    }
    // The motif mixture should produce mostly distinct structures.
    EXPECT_GT(canonical.size(), 100u);
}

TEST(MotifGenTest, ContainsOptimizableStructures)
{
    // A healthy fraction of motif programs must contain either shared
    // subexpressions (factorization fodder) or isomorphic slots
    // (vectorization fodder) — the properties the LLM prompt demands.
    MotifSynthesizer synth(5);
    int with_muls = 0;
    int multi_output = 0;
    for (int i = 0; i < 100; ++i) {
        const ir::ExprPtr program = synth.generate();
        const ir::OpCounts counts = ir::countOps(program);
        if (counts.ct_ct_mul + counts.ct_pt_mul + counts.square > 0) {
            ++with_muls;
        }
        if (ir::outputWidth(program) > 1) ++multi_output;
    }
    EXPECT_GT(with_muls, 50);
    EXPECT_GT(multi_output, 10);
}

TEST(BuildDatasetTest, DeduplicatesByCanonicalForm)
{
    int counter = 0;
    // Generator that cycles through only 3 distinct structures with
    // varying names: dedup must collapse the renamings.
    const auto gen = [&counter]() -> ir::ExprPtr {
        const int k = counter++;
        const std::string a = "a" + std::to_string(k);
        const std::string b = "b" + std::to_string(k);
        switch (k % 3) {
          case 0: return ir::parse("(+ " + a + " " + b + ")");
          case 1: return ir::parse("(* " + a + " " + b + ")");
          default: return ir::parse("(- " + a + " " + b + ")");
        }
    };
    const std::vector<ir::ExprPtr> dataset =
        buildDataset(gen, 10, {}, 1000);
    EXPECT_EQ(dataset.size(), 3u);
}

TEST(BuildDatasetTest, ExcludesBenchmarks)
{
    const ir::ExprPtr benchmark = ir::parse("(+ (* a b) (* c d))");
    int counter = 0;
    const auto gen = [&counter]() -> ir::ExprPtr {
        // Alternates between an alpha-renamed copy of the benchmark and a
        // different structure.
        const int k = counter++;
        if (k % 2 == 0) return ir::parse("(+ (* p q) (* r s))");
        return ir::parse("(+ p" + std::to_string(k) + " q)");
    };
    const std::vector<ir::ExprPtr> dataset =
        buildDataset(gen, 10, {benchmark}, 100);
    for (const auto& program : dataset) {
        EXPECT_NE(tokenizer::canonicalForm(program),
                  tokenizer::canonicalForm(benchmark));
    }
}

TEST(BuildDatasetTest, ReachesTargetWithRichGenerator)
{
    MotifSynthesizer synth(6);
    const std::vector<ir::ExprPtr> dataset = buildDataset(
        [&synth] { return synth.generate(); }, 150, {}, 10000);
    EXPECT_EQ(dataset.size(), 150u);
}

TEST(DatasetIoTest, SaveLoadRoundTrip)
{
    MotifSynthesizer synth(7);
    std::vector<ir::ExprPtr> programs;
    for (int i = 0; i < 20; ++i) programs.push_back(synth.generate());

    const std::string path = "/tmp/chehab_dataset_test.txt";
    saveDataset(programs, path);
    const std::vector<ir::ExprPtr> loaded = loadDataset(path);
    ASSERT_EQ(loaded.size(), programs.size());
    for (std::size_t i = 0; i < programs.size(); ++i) {
        EXPECT_TRUE(ir::equal(programs[i], loaded[i]));
    }
    std::remove(path.c_str());
}

TEST(DatasetIoTest, LoadSkipsInvalidLines)
{
    const std::string path = "/tmp/chehab_dataset_invalid.txt";
    {
        std::ofstream out(path);
        out << "(+ a b)\n";
        out << "(this is not valid\n";
        out << "(* c d)\n";
    }
    const std::vector<ir::ExprPtr> loaded = loadDataset(path);
    EXPECT_EQ(loaded.size(), 2u);
    std::remove(path.c_str());
}

} // namespace
} // namespace chehab::dataset
