/// \file
/// ICI tokenization tests: alpha-renaming invariance, 0/1 literal
/// preservation, constant-class consistency, and vocabulary encoding.
#include <gtest/gtest.h>

#include "ir/parser.h"
#include "tokenizer/ici.h"

namespace chehab::tokenizer {
namespace {

using ir::parse;

TEST(IciTest, PaperExampleCanonicalization)
{
    // (+ a (+ b c)) and (+ x (+ y z)) map to the same canonical sequence
    // (§5.1).
    EXPECT_EQ(canonicalForm(parse("(+ a (+ b c))")),
              canonicalForm(parse("(+ x (+ y z))")));
    EXPECT_EQ(canonicalForm(parse("(+ a (+ b c))")),
              "( + v0 ( + v1 v2 ) )");
}

TEST(IciTest, FirstOccurrenceOrdering)
{
    // The same variable re-occurring reuses its token.
    EXPECT_EQ(canonicalForm(parse("(+ a (* b a))")),
              "( + v0 ( * v1 v0 ) )");
}

TEST(IciTest, DistinguishesStructure)
{
    EXPECT_NE(canonicalForm(parse("(+ a b)")), canonicalForm(parse("(* a b)")));
    EXPECT_NE(canonicalForm(parse("(+ a a)")), canonicalForm(parse("(+ a b)")));
}

TEST(IciTest, ZeroAndOneStayLiteral)
{
    EXPECT_EQ(canonicalForm(parse("(* x 1)")), "( * v0 1 )");
    EXPECT_EQ(canonicalForm(parse("(+ x 0)")), "( + v0 0 )");
}

TEST(IciTest, ConstantClassesShareTokens)
{
    // The same constant reused receives the same c# token; distinct
    // constants receive distinct tokens; the literal value is discarded.
    EXPECT_EQ(canonicalForm(parse("(+ (* x 7) 7)")),
              canonicalForm(parse("(+ (* x 9) 9)")));
    EXPECT_NE(canonicalForm(parse("(+ (* x 7) 7)")),
              canonicalForm(parse("(+ (* x 7) 8)")));
    EXPECT_EQ(canonicalForm(parse("(+ (* x 7) 7)")),
              "( + ( * v0 c0 ) c0 )");
}

TEST(IciTest, PlaintextVarsSeparateNamespace)
{
    EXPECT_EQ(canonicalForm(parse("(* (pt w) x)")), "( * pv0 v1 )");
    EXPECT_NE(canonicalForm(parse("(* (pt w) x)")),
              canonicalForm(parse("(* w x)")));
}

TEST(IciTest, RotationStepsBucketed)
{
    EXPECT_EQ(canonicalForm(parse("(<< (Vec a b c d) 2)")),
              "( << ( Vec v0 v1 v2 v3 ) r+2 )");
    // Step 3 buckets to the next power of two.
    EXPECT_EQ(canonicalForm(parse("(<< (Vec a b c d) 3)")),
              "( << ( Vec v0 v1 v2 v3 ) r+4 )");
    EXPECT_EQ(canonicalForm(parse("(>> (Vec a b c d) 2)")),
              "( << ( Vec v0 v1 v2 v3 ) r-2 )");
}

TEST(IciTest, VectorOpsTokenized)
{
    EXPECT_EQ(canonicalForm(parse("(VecAdd (Vec a b) (Vec c d))")),
              "( VecAdd ( Vec v0 v1 ) ( Vec v2 v3 ) )");
}

TEST(IciVocabTest, KnownTokensHaveDistinctIds)
{
    const IciVocab vocab;
    EXPECT_NE(vocab.idOf("+"), vocab.idOf("*"));
    EXPECT_NE(vocab.idOf("v0"), vocab.idOf("v1"));
    EXPECT_NE(vocab.idOf("("), vocab.idOf(")"));
    EXPECT_EQ(vocab.idOf("totally-unknown"), vocab.unkId());
    EXPECT_GT(vocab.size(), 100);
}

TEST(IciVocabTest, EncodeShape)
{
    const IciVocab vocab;
    const std::vector<int> ids = vocab.encode(parse("(+ a b)"), 12);
    ASSERT_EQ(ids.size(), 12u);
    EXPECT_EQ(ids[0], vocab.clsId());
    EXPECT_EQ(ids[1], vocab.idOf("("));
    EXPECT_EQ(ids[2], vocab.idOf("+"));
    EXPECT_EQ(ids[3], vocab.idOf("v0"));
    EXPECT_EQ(ids[4], vocab.idOf("v1"));
    EXPECT_EQ(ids[5], vocab.idOf(")"));
    EXPECT_EQ(ids[6], vocab.padId());
}

TEST(IciVocabTest, EncodeTruncatesLongPrograms)
{
    const IciVocab vocab;
    std::string text = "(+ a b)";
    for (int i = 0; i < 6; ++i) text = "(+ " + text + " " + text + ")";
    const std::vector<int> ids = vocab.encode(parse(text), 32);
    EXPECT_EQ(ids.size(), 32u);
}

TEST(IciVocabTest, AlphaRenamedProgramsEncodeIdentically)
{
    const IciVocab vocab;
    EXPECT_EQ(vocab.encode(parse("(* p (+ q r))"), 16),
              vocab.encode(parse("(* alpha (+ beta gamma))"), 16));
}

} // namespace
} // namespace chehab::tokenizer
