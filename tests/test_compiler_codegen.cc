/// \file
/// Code generation tests (§4.4): the emitted SEAL-targeting C++ must
/// reference every instruction of the scheduled program with the right
/// API calls.
#include <gtest/gtest.h>

#include "compiler/codegen.h"
#include "ir/parser.h"

namespace chehab::compiler {
namespace {

std::string
gen(const std::string& text, const std::string& name = "kernel")
{
    return generateSealCpp(schedule(ir::parse(text)), name);
}

TEST(CodegenTest, EmitsFunctionSkeleton)
{
    const std::string code = gen("(+ a b)", "my_kernel");
    EXPECT_NE(code.find("Ciphertext"), std::string::npos);
    EXPECT_NE(code.find("my_kernel"), std::string::npos);
    EXPECT_NE(code.find("#include \"seal/seal.h\""), std::string::npos);
    EXPECT_NE(code.find("return r"), std::string::npos);
}

TEST(CodegenTest, MapsOpsToSealApi)
{
    EXPECT_NE(gen("(+ a b)").find("evaluator.add("), std::string::npos);
    EXPECT_NE(gen("(* a b)").find("evaluator.multiply("),
              std::string::npos);
    EXPECT_NE(gen("(* a b)").find("relinearize_inplace"),
              std::string::npos);
    EXPECT_NE(gen("(- a b)").find("evaluator.sub("), std::string::npos);
    EXPECT_NE(gen("(- a)").find("evaluator.negate("), std::string::npos);
    EXPECT_NE(gen("(* (pt w) x)").find("evaluator.multiply_plain("),
              std::string::npos);
    EXPECT_NE(gen("(<< (Vec a b c d) 1)").find("evaluator.rotate_rows("),
              std::string::npos);
}

TEST(CodegenTest, PackCommentsListSlots)
{
    const std::string code = gen("(VecAdd (Vec a b) (Vec c d))");
    EXPECT_NE(code.find("// [a, b]"), std::string::npos);
    EXPECT_NE(code.find("(replicated)"), std::string::npos);
}

TEST(CodegenTest, RotationStepsAppearLiterally)
{
    const std::string code = gen("(<< (Vec a b c d) 3)");
    EXPECT_NE(code.find(", 3, galois_keys"), std::string::npos);
}

TEST(CodegenTest, EveryRegisterDefinedBeforeUse)
{
    const FheProgram program = schedule(
        ir::parse("(VecAdd (VecMul (Vec a b) (Vec c d)) (Vec e f))"));
    const std::string code = generateSealCpp(program, "k");
    // The returned register must be declared somewhere above.
    const std::string ret = "return r" +
                            std::to_string(program.output_reg) + ";";
    EXPECT_NE(code.find(ret), std::string::npos);
    const std::string decl =
        "r" + std::to_string(program.output_reg) + ";";
    EXPECT_LT(code.find(decl), code.find(ret));
}

} // namespace
} // namespace chehab::compiler
