/// \file
/// Classic pass tests (§4.3): constant folding, identity simplification,
/// and the canonicalization pipeline.
#include <gtest/gtest.h>

#include "compiler/passes.h"
#include "ir/evaluator.h"
#include "ir/parser.h"

namespace chehab::compiler {
namespace {

using ir::parse;

TEST(ConstantFoldTest, FoldsArithmetic)
{
    EXPECT_EQ(constantFold(parse("(+ 2 3)"))->toString(), "5");
    EXPECT_EQ(constantFold(parse("(* (- 4 1) (+ 1 1))"))->toString(), "6");
    EXPECT_EQ(constantFold(parse("(- 5)"))->toString(), "-5");
}

TEST(ConstantFoldTest, FoldsNestedInsideCiphertextOps)
{
    EXPECT_EQ(constantFold(parse("(* x (+ 2 3))"))->toString(), "(* x 5)");
    EXPECT_EQ(constantFold(parse("(Vec (+ 1 2) x)"))->toString(),
              "(Vec 3 x)");
}

TEST(ConstantFoldTest, LeavesVariablesAlone)
{
    const ir::ExprPtr e = parse("(+ x (pt w))");
    EXPECT_TRUE(ir::equal(constantFold(e), e));
}

TEST(ConstantFoldTest, SharesUnchangedSubtrees)
{
    const ir::ExprPtr e = parse("(+ (* a b) (+ 1 2))");
    const ir::ExprPtr folded = constantFold(e);
    EXPECT_EQ(folded->child(0).get(), e->child(0).get());
}

TEST(SimplifyIdentitiesTest, RemovesIdentities)
{
    EXPECT_EQ(simplifyIdentities(parse("(+ x 0)"))->toString(), "x");
    EXPECT_EQ(simplifyIdentities(parse("(* 1 x)"))->toString(), "x");
    EXPECT_EQ(simplifyIdentities(parse("(- x 0)"))->toString(), "x");
    EXPECT_EQ(simplifyIdentities(parse("(* x 0)"))->toString(), "0");
    EXPECT_EQ(simplifyIdentities(parse("(- (- x))"))->toString(), "x");
}

TEST(SimplifyIdentitiesTest, CascadesBottomUp)
{
    EXPECT_EQ(simplifyIdentities(parse("(+ (* x 1) 0)"))->toString(), "x");
    EXPECT_EQ(simplifyIdentities(parse("(* (+ y 0) (* 1 z))"))->toString(),
              "(* y z)");
}

TEST(CanonicalizeTest, FoldThenSimplify)
{
    // (* x (- 3 2)) -> (* x 1) -> x.
    EXPECT_EQ(canonicalize(parse("(* x (- 3 2))"))->toString(), "x");
    EXPECT_EQ(canonicalize(parse("(+ (* x (+ 0 1)) (* 0 y))"))->toString(),
              "x");
}

TEST(CanonicalizeTest, PreservesSemantics)
{
    const char* programs[] = {
        "(+ (* x (- 3 2)) (* y 0))",
        "(Vec (+ a 0) (* b 1) (- c 0))",
        "(* (+ 2 3) (+ x y))",
    };
    for (const char* text : programs) {
        const ir::ExprPtr e = parse(text);
        EXPECT_TRUE(ir::equivalentOn(e, canonicalize(e), 8)) << text;
    }
}

} // namespace
} // namespace chehab::compiler
