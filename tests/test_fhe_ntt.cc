/// \file
/// Hot-path arithmetic property suite: MulModShoup / Barrett against
/// __uint128 references over boundary operands (0, 1, p-1, lazily
/// accumulated values >= p, 2^64-1), the Harvey lazy NTT against both a
/// naive O(n^2) negacyclic reference and the preserved seed baseline
/// path (bit-identity), and the shared-table / memoized-search caches'
/// observability counters.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "fhe/modarith.h"
#include "fhe/ntt.h"
#include "support/rng.h"

namespace chehab::fhe {
namespace {

/// Reference (x * w) mod p through the full 128-bit product.
std::uint64_t
refMulMod(std::uint64_t x, std::uint64_t w, std::uint64_t p)
{
    return static_cast<std::uint64_t>(
        static_cast<__uint128_t>(x) * w % p);
}

/// Primes spanning the supported range: the ~30-bit SealLite chain
/// width up to just under the 2^62 NTT table limit.
std::vector<std::uint64_t>
testPrimes()
{
    return {
        findNttPrimes(30, 1, 512)[0],
        findNttPrimes(45, 1, 512)[0],
        findNttPrimes(61, 1, 512)[0],
    };
}

// -- Shoup multiplication ----------------------------------------------

TEST(MulModShoupTest, MatchesReferenceOnBoundaryOperands)
{
    for (const std::uint64_t p : testPrimes()) {
        ASSERT_LT(p, 1ULL << 62);
        // w must be a reduced multiplicand (the precomputed side); x
        // may be ANY 64-bit value, including lazily accumulated ones.
        const std::uint64_t ws[] = {0, 1, 2, p / 2, p - 2, p - 1};
        const std::uint64_t xs[] = {0,         1,        p - 1,
                                    p,         p + 1,    2 * p - 1,
                                    2 * p,     4 * p - 1, ~0ULL};
        for (const std::uint64_t w : ws) {
            const std::uint64_t w_shoup = shoupPrecompute(w, p);
            for (const std::uint64_t x : xs) {
                EXPECT_EQ(mulModShoup(x, w, w_shoup, p),
                          refMulMod(x, w, p))
                    << "p=" << p << " w=" << w << " x=" << x;
                // The lazy variant may keep one extra multiple of p
                // but never more.
                const std::uint64_t lazy =
                    mulModShoupLazy(x, w, w_shoup, p);
                EXPECT_LT(lazy, 2 * p);
                EXPECT_EQ(lazy % p, refMulMod(x, w, p));
            }
        }
    }
}

TEST(MulModShoupTest, MatchesReferenceOnRandomOperands)
{
    Rng rng(7);
    for (const std::uint64_t p : testPrimes()) {
        for (int trial = 0; trial < 2000; ++trial) {
            const std::uint64_t w = rng.uniformInt(p);
            const std::uint64_t x = rng.next(); // full 64-bit domain
            const std::uint64_t w_shoup = shoupPrecompute(w, p);
            ASSERT_EQ(mulModShoup(x, w, w_shoup, p), refMulMod(x, w, p))
                << "p=" << p << " w=" << w << " x=" << x;
        }
    }
}

// -- Barrett reduction -------------------------------------------------

TEST(BarrettTest, ReduceMatchesReferenceOnBoundariesAndRandom)
{
    Rng rng(8);
    for (const std::uint64_t p : testPrimes()) {
        const Barrett barrett(p);
        const std::uint64_t vs[] = {0,     1,         p - 1, p,
                                    p + 1, 2 * p - 1, 2 * p, ~0ULL};
        for (const std::uint64_t v : vs) {
            EXPECT_EQ(barrett.reduce(v), v % p) << "p=" << p << " v=" << v;
        }
        for (int trial = 0; trial < 2000; ++trial) {
            const std::uint64_t v = rng.next();
            ASSERT_EQ(barrett.reduce(v), v % p) << "p=" << p << " v=" << v;
        }
    }
}

TEST(BarrettTest, MulModMatchesReferenceForChainWidthPrimes)
{
    // Barrett::mulMod needs the raw product to fit 64 bits, which the
    // SealLite chains guarantee by capping prime_bits; exercise the
    // full reduced-operand domain at that width.
    Rng rng(9);
    const std::uint64_t p = findNttPrimes(31, 1, 512)[0];
    const Barrett barrett(p);
    const std::uint64_t edge[] = {0, 1, p - 2, p - 1};
    for (const std::uint64_t a : edge) {
        for (const std::uint64_t b : edge) {
            EXPECT_EQ(barrett.mulMod(a, b), refMulMod(a, b, p));
        }
    }
    for (int trial = 0; trial < 2000; ++trial) {
        const std::uint64_t a = rng.uniformInt(p);
        const std::uint64_t b = rng.uniformInt(p);
        ASSERT_EQ(barrett.mulMod(a, b), refMulMod(a, b, p));
    }
}

// -- Harvey NTT vs naive negacyclic reference --------------------------

/// Schoolbook product in Z_p[x]/(x^n + 1): the wrap-around terms come
/// back negated.
std::vector<std::uint64_t>
naiveNegacyclic(const std::vector<std::uint64_t>& a,
                const std::vector<std::uint64_t>& b, std::uint64_t p)
{
    const std::size_t n = a.size();
    std::vector<std::uint64_t> out(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            const std::uint64_t term = refMulMod(a[i], b[j], p);
            const std::size_t k = i + j;
            if (k < n) {
                out[k] = addMod(out[k], term, p);
            } else {
                out[k - n] = subMod(out[k - n], term, p);
            }
        }
    }
    return out;
}

std::vector<std::uint64_t>
randomPoly(Rng& rng, int n, std::uint64_t p)
{
    std::vector<std::uint64_t> poly(static_cast<std::size_t>(n));
    for (auto& c : poly) c = rng.uniformInt(p);
    return poly;
}

TEST(HarveyNttTest, PolyMultiplyMatchesNaiveReference)
{
    Rng rng(10);
    for (const std::uint64_t p : testPrimes()) {
        for (const int n : {2, 4, 16, 64, 256}) {
            const NttTables tables(n, p);
            for (int trial = 0; trial < 5; ++trial) {
                const auto a = randomPoly(rng, n, p);
                const auto b = randomPoly(rng, n, p);
                auto fa = a;
                auto fb = b;
                tables.forward(fa.data());
                tables.forward(fb.data());
                for (int i = 0; i < n; ++i) {
                    fa[static_cast<std::size_t>(i)] =
                        tables.reducer().reduce(refMulMod(
                            fa[static_cast<std::size_t>(i)],
                            fb[static_cast<std::size_t>(i)], p));
                }
                tables.inverse(fa.data());
                ASSERT_EQ(fa, naiveNegacyclic(a, b, p))
                    << "p=" << p << " n=" << n;
            }
        }
    }
}

TEST(HarveyNttTest, BitIdenticalToSeedBaselinePath)
{
    Rng rng(11);
    for (const std::uint64_t p : testPrimes()) {
        // testPrimes() are ≡ 1 (mod 512), so degrees up to 2n = 512.
        for (const int n : {1, 2, 8, 64, 256}) {
            const NttTables tables(n, p);
            const auto input = randomPoly(rng, n, p);
            auto harvey = input;
            auto baseline = input;
            tables.forward(harvey.data());
            tables.forwardBaseline(baseline.data());
            ASSERT_EQ(harvey, baseline) << "forward p=" << p << " n=" << n;
            tables.inverse(harvey.data());
            tables.inverseBaseline(baseline.data());
            ASSERT_EQ(harvey, baseline) << "inverse p=" << p << " n=" << n;
            ASSERT_EQ(harvey, input) << "round-trip p=" << p << " n=" << n;
        }
    }
}

TEST(HarveyNttTest, TinyDegreeEdgeCases)
{
    const std::uint64_t p = findNttPrimes(30, 1, 512)[0];
    {
        // n = 1: Z_p[x]/(x + 1) — the transform is the identity and the
        // "product" is a single mulmod.
        const NttTables tables(1, p);
        std::uint64_t value = 42 % p;
        tables.forward(&value);
        tables.inverse(&value);
        EXPECT_EQ(value, 42u % p);
    }
    {
        const NttTables tables(2, p);
        std::vector<std::uint64_t> a = {3, 5};
        std::vector<std::uint64_t> b = {7, 11};
        auto fa = a;
        auto fb = b;
        tables.forward(fa.data());
        tables.forward(fb.data());
        for (int i = 0; i < 2; ++i) {
            fa[static_cast<std::size_t>(i)] = refMulMod(
                fa[static_cast<std::size_t>(i)],
                fb[static_cast<std::size_t>(i)], p);
        }
        tables.inverse(fa.data());
        // (3 + 5x)(7 + 11x) = 21 + 68x + 55x^2 = (21 - 55) + 68x.
        EXPECT_EQ(fa, naiveNegacyclic(a, b, p));
        EXPECT_EQ(fa[0], subMod(21, 55, p));
        EXPECT_EQ(fa[1], 68u);
    }
}

// -- shared tables + memoized searches ---------------------------------

TEST(NttTableCacheTest, SameParamsShareOneTableInstance)
{
    const std::uint64_t p = findNttPrimes(30, 1, 1024)[0];
    const NttTableCacheStats before = nttTableCacheStats();
    const auto first = acquireNttTables(512, p);
    const auto second = acquireNttTables(512, p);
    EXPECT_EQ(first.get(), second.get());
    const NttTableCacheStats after = nttTableCacheStats();
    // The second acquire must be a hit; the first is a hit or a miss
    // depending on what earlier tests (or another first) built.
    EXPECT_GE(after.hits, before.hits + 1);
    // A distinct prime is a distinct entry.
    const std::uint64_t q = findNttPrimes(29, 1, 1024)[0];
    ASSERT_NE(p, q);
    const auto other = acquireNttTables(512, q);
    EXPECT_NE(other.get(), first.get());
    EXPECT_EQ(other->modulus(), q);
}

TEST(NttTableCacheTest, RepeatedSearchesHitTheMemo)
{
    // Cold or warm, the first call may or may not search; the repeat
    // calls with identical arguments must not.
    const std::uint64_t p = findNttPrimes(28, 2, 256)[1];
    findPrimitiveRoot(256, p);
    const std::uint64_t primes_before = nttPrimeSearches();
    const std::uint64_t roots_before = primitiveRootSearches();
    for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(findNttPrimes(28, 2, 256)[1], p);
        EXPECT_EQ(findPrimitiveRoot(256, p),
                  findPrimitiveRoot(256, p));
    }
    EXPECT_EQ(nttPrimeSearches(), primes_before);
    EXPECT_EQ(primitiveRootSearches(), roots_before);
}

} // namespace
} // namespace chehab::fhe
