/// \file
/// End-to-end execution tests: scheduled programs run on SealLite and
/// must reproduce the reference evaluator's outputs — for hand-written
/// circuits, optimizer outputs, CoyoteSim outputs, and with NAF-selected
/// rotation keys. This closes the loop from DSL to homomorphic hardware.
#include <gtest/gtest.h>

#include "baselines/coyote_sim.h"
#include "compiler/pipeline.h"
#include "compiler/runtime.h"
#include "ir/parser.h"
#include "support/rng.h"

namespace chehab::compiler {
namespace {

fhe::SealLiteParams
smallParams()
{
    fhe::SealLiteParams params;
    params.n = 256;
    params.prime_count = 4;
    params.seed = 17;
    return params;
}

/// Run `text` through schedule+SealLite and compare every output slot to
/// the reference slot evaluator.
void
expectMatchesReference(const std::string& text, const ir::Env& env,
                       int key_budget = 0)
{
    const ir::ExprPtr program = ir::parse(text);
    const FheProgram scheduled = schedule(program);
    FheRuntime runtime(smallParams());
    const RunResult run = runtime.run(scheduled, env, key_budget);

    const ir::Value expected = ir::Evaluator().evaluate(program, env);
    ASSERT_EQ(static_cast<int>(run.output.size()),
              expected.is_vector ? expected.width() : 1);
    for (std::size_t i = 0; i < run.output.size(); ++i) {
        EXPECT_EQ(run.output[i], expected.slots[i]) << text << " slot " << i;
    }
    EXPECT_GT(run.final_noise_budget, 0) << "budget exhausted for " << text;
}

TEST(RuntimeTest, ScalarArithmetic)
{
    expectMatchesReference("(+ (* a b) c)", {{"a", 3}, {"b", 4}, {"c", 5}});
}

TEST(RuntimeTest, PlaintextOperands)
{
    expectMatchesReference("(+ (* (pt w) x) 7)", {{"w", 3}, {"x", 11}});
}

TEST(RuntimeTest, VectorizedCircuit)
{
    expectMatchesReference("(VecAdd (VecMul (Vec a b) (Vec c d)) (Vec e f))",
                           {{"a", 2}, {"b", 3}, {"c", 4},
                            {"d", 5}, {"e", 6}, {"f", 7}});
}

TEST(RuntimeTest, Pow2RotationSemantics)
{
    expectMatchesReference("(<< (Vec a b c d) 1)",
                           {{"a", 1}, {"b", 2}, {"c", 3}, {"d", 4}});
    expectMatchesReference("(<< (Vec a b c d) 3)",
                           {{"a", 1}, {"b", 2}, {"c", 3}, {"d", 4}});
}

TEST(RuntimeTest, NonPow2RotationSemantics)
{
    expectMatchesReference("(<< (Vec a b c) 1)",
                           {{"a", 1}, {"b", 2}, {"c", 3}});
    expectMatchesReference("(<< (Vec a b c d e) 2)",
                           {{"a", 1}, {"b", 2}, {"c", 3},
                            {"d", 4}, {"e", 5}});
}

TEST(RuntimeTest, ComputedPack)
{
    expectMatchesReference("(Vec a (+ x y) b c)",
                           {{"a", 1}, {"x", 2}, {"y", 3},
                            {"b", 4}, {"c", 5}});
}

TEST(RuntimeTest, RotateReduceDotProduct)
{
    // The optimizer's signature circuit shape.
    expectMatchesReference(
        "(VecAdd (VecAdd (VecMul (Vec a0 a1 a2 a3) (Vec b0 b1 b2 b3))"
        "                (<< (VecMul (Vec a0 a1 a2 a3) (Vec b0 b1 b2 b3)) 2))"
        "        (<< (VecAdd (VecMul (Vec a0 a1 a2 a3) (Vec b0 b1 b2 b3))"
        "            (<< (VecMul (Vec a0 a1 a2 a3) (Vec b0 b1 b2 b3)) 2)) 1))",
        {{"a0", 1}, {"a1", 2}, {"a2", 3}, {"a3", 4},
         {"b0", 5}, {"b1", 6}, {"b2", 7}, {"b3", 8}});
}

TEST(RuntimeTest, NafKeyBudgetStillCorrect)
{
    // Rotations by 3 and 5 decompose under a tight key budget but must
    // compute the same result.
    expectMatchesReference(
        "(VecAdd (<< (Vec a b c d e f g h) 3)"
        "        (<< (Vec a b c d e f g h) 5))",
        {{"a", 1}, {"b", 2}, {"c", 3}, {"d", 4},
         {"e", 5}, {"f", 6}, {"g", 7}, {"h", 8}},
        /*key_budget=*/3);
}

TEST(RuntimeTest, GreedyPipelineEndToEnd)
{
    const trs::Ruleset ruleset = trs::buildChehabRuleset();
    const ir::ExprPtr source =
        ir::parse("(+ (+ (* a0 b0) (* a1 b1)) (+ (* a2 b2) (* a3 b3)))");
    const Compiled compiled = compileGreedy(ruleset, source);
    EXPECT_LT(compiled.stats.final_cost, compiled.stats.initial_cost);

    FheRuntime runtime(smallParams());
    const ir::Env env = {{"a0", 1}, {"a1", 2}, {"a2", 3}, {"a3", 4},
                         {"b0", 5}, {"b1", 6}, {"b2", 7}, {"b3", 8}};
    const RunResult run = runtime.run(compiled.program, env);
    EXPECT_EQ(run.output[0], 70);
}

TEST(RuntimeTest, CoyoteSimEndToEnd)
{
    baselines::CoyoteConfig config;
    config.search_budget = 2000;
    const ir::ExprPtr source = ir::parse(
        "(Vec (+ (* a b) (* c d)) (+ (* e f) (* g h)))");
    const baselines::CoyoteResult coyote =
        baselines::coyoteCompile(source, config);
    ASSERT_NE(coyote.program, nullptr);
    EXPECT_TRUE(ir::equivalentOn(source, coyote.program, 8));

    FheRuntime runtime(smallParams());
    const ir::Env env = {{"a", 2}, {"b", 3}, {"c", 4}, {"d", 5},
                         {"e", 6}, {"f", 7}, {"g", 8}, {"h", 9}};
    const RunResult run = runtime.run(schedule(coyote.program), env);
    ASSERT_GE(run.output.size(), 2u);
    EXPECT_EQ(run.output[0], 2 * 3 + 4 * 5);
    EXPECT_EQ(run.output[1], 6 * 7 + 8 * 9);
}

TEST(RuntimeTest, NoiseConsumptionReported)
{
    const FheProgram program =
        schedule(ir::parse("(VecMul (Vec a b) (Vec c d))"));
    FheRuntime runtime(smallParams());
    const RunResult run =
        runtime.run(program, {{"a", 1}, {"b", 2}, {"c", 3}, {"d", 4}});
    EXPECT_GT(run.consumed_noise, 5);
    EXPECT_EQ(run.fresh_noise_budget,
              run.final_noise_budget + run.consumed_noise);
}

TEST(RuntimeTest, CalibrationAndEstimate)
{
    FheRuntime runtime(smallParams());
    const OpLatencies lat = runtime.calibrate(1);
    EXPECT_GT(lat.ct_ct_mul, lat.ct_add);
    const FheProgram program =
        schedule(ir::parse("(VecMul (Vec a b) (Vec c d))"));
    EXPECT_GT(runtime.estimate(program, lat), 0.0);
}

} // namespace
} // namespace chehab::compiler
