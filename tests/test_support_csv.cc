/// \file
/// Round-trip tests for the shared CSV escaping/parsing path.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "support/csv.h"

namespace chehab {
namespace {

TEST(CsvTest, EscapePlainCellsUnchanged)
{
    EXPECT_EQ(csvEscape("kernel_1"), "kernel_1");
    EXPECT_EQ(csvEscape("3.14"), "3.14");
    EXPECT_EQ(csvEscape(""), "");
}

TEST(CsvTest, EscapeQuotesSpecials)
{
    EXPECT_EQ(csvEscape("a,b"), "\"a,b\"");
    EXPECT_EQ(csvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvTest, SplitPlainLine)
{
    EXPECT_EQ(splitCsvLine("a,b,c"),
              (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(splitCsvLine("a,,c"),
              (std::vector<std::string>{"a", "", "c"}));
    EXPECT_EQ(splitCsvLine(""), (std::vector<std::string>{""}));
}

TEST(CsvTest, SplitInvertsEscape)
{
    const std::vector<std::string> cells = {"plain", "with,comma",
                                            "with \"quotes\"", ""};
    std::string line;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i) line += ',';
        line += csvEscape(cells[i]);
    }
    EXPECT_EQ(splitCsvLine(line), cells);
}

TEST(CsvTest, WriterEscapesOnDisk)
{
    const std::string path = "test_csv_roundtrip.csv";
    {
        CsvWriter csv(path, {"name", "note"});
        ASSERT_TRUE(csv.ok());
        csv.writeRow("k1", "compile failed: expected ')', got ','");
        csv.writeRow("k2", 42);
    }
    std::ifstream in(path);
    std::string header;
    std::string row1;
    std::string row2;
    std::getline(in, header);
    std::getline(in, row1);
    std::getline(in, row2);
    EXPECT_EQ(splitCsvLine(header),
              (std::vector<std::string>{"name", "note"}));
    EXPECT_EQ(splitCsvLine(row1),
              (std::vector<std::string>{
                  "k1", "compile failed: expected ')', got ','"}));
    EXPECT_EQ(splitCsvLine(row2), (std::vector<std::string>{"k2", "42"}));
    std::remove(path.c_str());
}

} // namespace
} // namespace chehab
