/// \file
/// Tests for the slot-batching coalescer: packed vs. solo bit-identical
/// outputs per lane, packed-noise determinism at 1 vs. 8 workers,
/// partial final batches, mixed-parameter batches never coalescing,
/// window-timeout flushes, the lane-safety analysis itself, and the
/// counter-consistency invariants the concurrency audit asserts under
/// TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "benchsuite/kernels.h"
#include "compiler/driver.h"
#include "compiler/passes.h"
#include "compiler/runtime.h"
#include "ir/evaluator.h"
#include "ir/parser.h"
#include "service/batch_planner.h"
#include "service/compile_service.h"
#include "service/shard_router.h"
#include "support/telemetry.h"
#include "trs/ruleset.h"

namespace chehab::service {
namespace {

fhe::SealLiteParams
smallParams()
{
    fhe::SealLiteParams params;
    params.n = 256; // 128-slot row.
    params.prime_count = 4;
    params.seed = 17;
    return params;
}

std::string
dotSource(int n)
{
    std::string sum;
    for (int i = 0; i < n; ++i) {
        const std::string term = "(* a" + std::to_string(i) + " b" +
                                 std::to_string(i) + ")";
        sum = i == 0 ? term : "(+ " + sum + " " + term + ")";
    }
    return sum;
}

/// Distinct deterministic inputs per request index.
ir::Env
inputsFor(const ir::ExprPtr& source, int index)
{
    ir::Env env = benchsuite::syntheticInputs(source);
    for (auto& [name, value] : env) value += index * 7 + 1;
    return env;
}

RunRequest
laneRequest(const std::string& name, const ir::ExprPtr& source, int index,
            int key_budget = 0)
{
    RunRequest request;
    request.name = name;
    request.source = source;
    request.pipeline = compiler::DriverConfig::greedy({}, 20);
    request.inputs = inputsFor(source, index);
    request.key_budget = key_budget;
    request.params = smallParams();
    return request;
}

ServiceConfig
batchedConfig(int workers, int max_lanes, double window_seconds)
{
    ServiceConfig config;
    config.num_workers = workers;
    config.max_lanes = max_lanes;
    config.batch_window_seconds = window_seconds;
    return config;
}

struct Snapshot
{
    std::vector<std::int64_t> output;
    int fresh = 0;
    int final_budget = 0;
    int consumed = 0;
    int keys = 0;
    int packed_lanes = 0;
    int lane = 0;
};

std::map<std::string, Snapshot>
runAndSnapshot(const ServiceConfig& config,
               std::vector<RunRequest> batch)
{
    std::map<std::string, Snapshot> by_name;
    CompileService service(config);
    for (RunResponse& response : service.runBatch(std::move(batch))) {
        EXPECT_TRUE(response.ok)
            << response.name << ": " << response.error;
        Snapshot snap;
        snap.output = response.result.output;
        snap.fresh = response.result.fresh_noise_budget;
        snap.final_budget = response.result.final_noise_budget;
        snap.consumed = response.result.consumed_noise;
        snap.keys = response.result.rotation_keys;
        snap.packed_lanes = response.packed_lanes;
        snap.lane = response.lane;
        by_name[response.name] = snap;
    }
    return by_name;
}

// ---- packed vs. solo --------------------------------------------------

TEST(ServiceBatchingTest, PackedOutputsBitIdenticalToSolo)
{
    const ir::ExprPtr source = ir::parse(dotSource(4));
    const int n = 8;
    std::vector<RunRequest> batch;
    for (int i = 0; i < n; ++i) {
        batch.push_back(
            laneRequest("k" + std::to_string(i), source, i));
    }

    // Solo: coalescing disabled (the default config).
    const auto solo =
        runAndSnapshot(batchedConfig(2, /*max_lanes=*/1, 0.0), batch);
    // Packed: all eight requests share one row (capacity 8 fills the
    // group before any window could expire).
    const auto packed =
        runAndSnapshot(batchedConfig(2, /*max_lanes=*/8, 1.0), batch);

    ASSERT_EQ(solo.size(), packed.size());
    for (const auto& [name, solo_snap] : solo) {
        ASSERT_TRUE(packed.count(name)) << name;
        const Snapshot& packed_snap = packed.at(name);
        // The determinism contract: per-lane outputs are bit-identical
        // to the solo run; so are the request-independent accounting
        // fields (fresh budget, rotation keys). The final/consumed
        // noise describes the shared row and may legitimately differ.
        EXPECT_EQ(solo_snap.output, packed_snap.output) << name;
        EXPECT_EQ(solo_snap.fresh, packed_snap.fresh) << name;
        EXPECT_EQ(solo_snap.keys, packed_snap.keys) << name;
        EXPECT_EQ(solo_snap.packed_lanes, 1) << name;
        EXPECT_EQ(packed_snap.packed_lanes, n) << name;
        EXPECT_FALSE(packed_snap.output.empty()) << name;
        // Every lane rode the same row: shared noise accounting.
        EXPECT_EQ(packed_snap.final_budget,
                  packed.begin()->second.final_budget)
            << name;
        EXPECT_GT(packed_snap.final_budget, 0) << name;
    }
    // And both agree with the reference evaluator.
    for (int i = 0; i < n; ++i) {
        const ir::Value expected =
            ir::Evaluator().evaluate(source, inputsFor(source, i));
        EXPECT_EQ(packed.at("k" + std::to_string(i)).output[0],
                  expected.slots[0]);
    }
}

TEST(ServiceBatchingTest, PackedDeterministicAcrossWorkerCounts)
{
    const ir::ExprPtr source = ir::parse(dotSource(4));
    auto makeBatch = [&source] {
        std::vector<RunRequest> batch;
        for (int i = 0; i < 8; ++i) {
            batch.push_back(
                laneRequest("k" + std::to_string(i), source, i));
        }
        return batch;
    };

    const auto serial =
        runAndSnapshot(batchedConfig(1, 8, 1.0), makeBatch());
    const auto wide =
        runAndSnapshot(batchedConfig(8, 8, 1.0), makeBatch());
    ASSERT_EQ(serial.size(), wide.size());
    for (const auto& [name, snap] : serial) {
        ASSERT_TRUE(wide.count(name)) << name;
        const Snapshot& other = wide.at(name);
        // Same group composition => same lane order, same packing seed:
        // outputs AND the shared row's noise accounting are
        // bit-identical regardless of worker count.
        EXPECT_EQ(snap.output, other.output) << name;
        EXPECT_EQ(snap.fresh, other.fresh) << name;
        EXPECT_EQ(snap.final_budget, other.final_budget) << name;
        EXPECT_EQ(snap.consumed, other.consumed) << name;
        EXPECT_EQ(snap.keys, other.keys) << name;
        EXPECT_EQ(snap.packed_lanes, other.packed_lanes) << name;
        EXPECT_EQ(snap.lane, other.lane) << name;
        EXPECT_EQ(snap.packed_lanes, 8) << name;
    }
}

TEST(ServiceBatchingTest, ShardedDeterministicAcrossWorkerAndShardCounts)
{
    const ir::ExprPtr source = ir::parse(dotSource(4));
    auto makeBatch = [&source] {
        std::vector<RunRequest> batch;
        for (int i = 0; i < 8; ++i) {
            batch.push_back(
                laneRequest("k" + std::to_string(i), source, i));
        }
        return batch;
    };
    auto shardedSnapshot = [&](int shards, int workers) {
        ServiceConfig config = batchedConfig(workers, 8, 1.0);
        config.shards = shards;
        std::map<std::string, Snapshot> by_name;
        ShardedService service(config);
        for (RunResponse& response : service.runBatch(makeBatch())) {
            EXPECT_TRUE(response.ok)
                << response.name << ": " << response.error;
            Snapshot snap;
            snap.output = response.result.output;
            snap.fresh = response.result.fresh_noise_budget;
            snap.final_budget = response.result.final_noise_budget;
            snap.consumed = response.result.consumed_noise;
            snap.keys = response.result.rotation_keys;
            by_name[response.name] = snap;
        }
        return by_name;
    };

    // 1 shard x 1 worker is the plain-serial reference; the outputs
    // and request-independent accounting must survive 8 workers and
    // any sharding (row composition per shard may differ — final and
    // consumed noise describe the shared row — but lane bits and fresh
    // budgets never do).
    const auto reference = shardedSnapshot(1, 1);
    const auto one_shard_wide = shardedSnapshot(1, 8);
    for (const auto& [name, snap] : reference) {
        ASSERT_TRUE(one_shard_wide.count(name)) << name;
        const Snapshot& other = one_shard_wide.at(name);
        // Same shard, same group composition: full bit-identity
        // including the shared row's noise accounting.
        EXPECT_EQ(snap.output, other.output) << name;
        EXPECT_EQ(snap.fresh, other.fresh) << name;
        EXPECT_EQ(snap.final_budget, other.final_budget) << name;
        EXPECT_EQ(snap.consumed, other.consumed) << name;
        EXPECT_EQ(snap.keys, other.keys) << name;
    }
    for (const auto& [shards, workers] :
         std::vector<std::pair<int, int>>{{2, 4}, {4, 1}}) {
        const auto sharded = shardedSnapshot(shards, workers);
        ASSERT_EQ(sharded.size(), reference.size());
        for (const auto& [name, snap] : reference) {
            ASSERT_TRUE(sharded.count(name)) << name;
            const Snapshot& other = sharded.at(name);
            EXPECT_EQ(snap.output, other.output)
                << name << " @ " << shards << " shards";
            EXPECT_EQ(snap.fresh, other.fresh)
                << name << " @ " << shards << " shards";
            EXPECT_EQ(snap.keys, other.keys)
                << name << " @ " << shards << " shards";
        }
    }
}

TEST(ServiceBatchingTest, PartialFinalBatchFlushesViaWindow)
{
    const ir::ExprPtr source = ir::parse(dotSource(4));
    std::vector<RunRequest> batch;
    for (int i = 0; i < 6; ++i) {
        batch.push_back(laneRequest("k" + std::to_string(i), source, i));
    }
    // Capacity 4: the first four lanes flush full; the remaining two
    // form a partial group only the window can flush.
    CompileService service(batchedConfig(2, 4, /*window=*/0.15));
    std::vector<RunResponse> responses =
        service.runBatch(std::move(batch));
    int lanes4 = 0;
    int lanes2 = 0;
    for (const RunResponse& response : responses) {
        ASSERT_TRUE(response.ok)
            << response.name << ": " << response.error;
        if (response.packed_lanes == 4) ++lanes4;
        if (response.packed_lanes == 2) ++lanes2;
        const int index = std::stoi(response.name.substr(1));
        const ir::Value expected = ir::Evaluator().evaluate(
            source, inputsFor(source, index));
        EXPECT_EQ(response.result.output[0], expected.slots[0])
            << response.name;
    }
    EXPECT_EQ(lanes4, 4);
    EXPECT_EQ(lanes2, 2);
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.packed_groups, 2u);
    EXPECT_EQ(stats.packed_lanes, 6u);
    EXPECT_EQ(stats.full_flushes, 1u);
    EXPECT_GE(stats.window_flushes, 1u);
}

TEST(ServiceBatchingTest, MixedParamsAndBudgetsNeverCoalesce)
{
    const ir::ExprPtr source = ir::parse(dotSource(4));
    std::vector<RunRequest> batch;
    batch.push_back(laneRequest("p17", source, 0));
    RunRequest other_params = laneRequest("p23", source, 0);
    other_params.params.seed = 23; // Different runtime family.
    batch.push_back(std::move(other_params));

    CompileService service(batchedConfig(2, 8, /*window=*/0.05));
    std::vector<RunResponse> responses =
        service.runBatch(std::move(batch));
    for (const RunResponse& response : responses) {
        ASSERT_TRUE(response.ok)
            << response.name << ": " << response.error;
        // Each request sat in its own single-lane group, so both ran
        // solo (packing across parameter sets would mix key material).
        EXPECT_EQ(response.packed_lanes, 1) << response.name;
    }
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.packed_groups, 0u);
    EXPECT_EQ(stats.solo_runs, 2u);
}

TEST(ServiceBatchingTest, WindowTimeoutFlushesUndersizedGroup)
{
    const ir::ExprPtr source = ir::parse(dotSource(4));
    std::vector<RunRequest> batch;
    for (int i = 0; i < 3; ++i) {
        batch.push_back(laneRequest("k" + std::to_string(i), source, i));
    }
    // Capacity 8 but only 3 requests: nothing fills the group; the
    // window must flush it or runBatch would block forever.
    CompileService service(batchedConfig(2, 8, /*window=*/0.1));
    std::vector<RunResponse> responses =
        service.runBatch(std::move(batch));
    for (const RunResponse& response : responses) {
        ASSERT_TRUE(response.ok)
            << response.name << ": " << response.error;
        EXPECT_EQ(response.packed_lanes, 3) << response.name;
    }
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.packed_groups, 1u);
    EXPECT_EQ(stats.packed_lanes, 3u);
    EXPECT_EQ(stats.full_flushes, 0u);
    EXPECT_GE(stats.window_flushes, 1u);
}

TEST(ServiceBatchingTest, RowFillingKernelRunsSolo)
{
    // A pack as wide as the row leaves no lane to share: the planner
    // must refuse and the service must fall back to solo execution.
    std::string vec = "(VecAdd (Vec";
    std::string other = " (Vec";
    for (int i = 0; i < 128; ++i) {
        vec += " x" + std::to_string(i);
        other += " y" + std::to_string(i);
    }
    const ir::ExprPtr source = ir::parse(vec + ")" + other + "))");
    std::vector<RunRequest> batch;
    for (int i = 0; i < 2; ++i) {
        batch.push_back(laneRequest("w" + std::to_string(i), source, i));
    }
    CompileService service(batchedConfig(2, 8, /*window=*/0.05));
    std::vector<RunResponse> responses =
        service.runBatch(std::move(batch));
    for (const RunResponse& response : responses) {
        ASSERT_TRUE(response.ok)
            << response.name << ": " << response.error;
        EXPECT_EQ(response.packed_lanes, 1) << response.name;
    }
    EXPECT_EQ(service.stats().packed_groups, 0u);
    EXPECT_EQ(service.stats().solo_runs, 2u);
}

// ---- the lane-safety analysis directly --------------------------------

TEST(ServiceBatchingTest, LaneFitCertifiesRotateReduceKernels)
{
    const trs::Ruleset ruleset = trs::buildChehabRuleset();
    const compiler::CompilerDriver driver(&ruleset);
    const compiler::Compiled compiled =
        driver.compile(compiler::canonicalize(ir::parse(dotSource(4))),
                       compiler::DriverConfig::greedy({}, 20));
    const compiler::RotationKeyPlan plan =
        compiler::effectiveKeyPlan(compiled.program, 0);
    const LaneFit fit = analyzeLaneFit(compiled.program, plan, 128);
    ASSERT_TRUE(fit.safe) << fit.reason;
    EXPECT_GE(fit.max_lanes, 2);
    EXPECT_LE(fit.stride, 32);
    EXPECT_EQ(fit.stride * fit.max_lanes, 128);

    // The same program cannot share a 4-slot row with anyone.
    const LaneFit tiny = analyzeLaneFit(compiled.program, plan, 4);
    EXPECT_FALSE(tiny.safe);
}

TEST(ServiceBatchingTest, RotatedAperiodicConstantPackIsNotCertified)
{
    // Regression: a rotated NON-replicated constant pack repeats its
    // pattern per region in the packed row but is zero-tailed in the
    // solo row, so rotation wraps constants across the region boundary
    // where solo semantics has zeros. The analysis must not certify a
    // stride whose readout window can see those wrapped slots.
    compiler::FheProgram program;
    compiler::FheInstr pack;
    pack.op = compiler::FheOpcode::PackCipher;
    pack.replicate = false;
    for (std::int64_t v : {5, 7, 9}) {
        compiler::PackSlot slot;
        slot.kind = compiler::PackSlot::Kind::Const;
        slot.value = v;
        pack.slots.push_back(slot);
    }
    pack.dst = 0;
    program.instrs.push_back(pack);
    compiler::FheInstr rot;
    rot.op = compiler::FheOpcode::Rotate;
    rot.a = 0;
    rot.step = 1;
    rot.dst = 1;
    program.instrs.push_back(rot);
    program.num_regs = 2;
    program.output_reg = 1;
    program.output_width = 4;

    const compiler::RotationKeyPlan plan =
        compiler::effectiveKeyPlan(program, 0);
    const LaneFit fit = analyzeLaneFit(program, plan, 128);
    // Stride 4 would put the wrapped constant inside the 4-slot
    // readout; the smallest sound stride is 8 (dirty_top = 1).
    ASSERT_TRUE(fit.safe) << fit.reason;
    EXPECT_GE(fit.stride, 8);

    // And the certified stride really is bit-identical to solo.
    std::vector<ir::Env> envs(2);
    std::vector<const ir::Env*> lanes = {&envs[0], &envs[1]};
    compiler::FheRuntime packed_rt(smallParams());
    const compiler::PackedRunResult packed =
        packed_rt.runPacked(program, lanes, plan, fit.stride);
    compiler::FheRuntime solo_rt(smallParams());
    const compiler::RunResult solo = solo_rt.run(program, envs[0], plan);
    EXPECT_EQ(packed.lane_outputs[0], solo.output);
    EXPECT_EQ(packed.lane_outputs[1], solo.output);
    EXPECT_EQ(solo.output, (std::vector<std::int64_t>{7, 9, 0, 0}));
}

TEST(ServiceBatchingTest, RunPackedMatchesSoloRunsDirectly)
{
    // Runtime-level check, bypassing the service: three lanes packed in
    // one row equal three solo runs, output for output.
    const trs::Ruleset ruleset = trs::buildChehabRuleset();
    const compiler::CompilerDriver driver(&ruleset);
    const ir::ExprPtr source = ir::parse(dotSource(8));
    const compiler::Compiled compiled =
        driver.compile(compiler::canonicalize(source),
                       compiler::DriverConfig::greedy({}, 20));
    const compiler::RotationKeyPlan plan =
        compiler::effectiveKeyPlan(compiled.program, 0);
    const LaneFit fit = analyzeLaneFit(compiled.program, plan, 128);
    ASSERT_TRUE(fit.safe) << fit.reason;

    std::vector<ir::Env> envs;
    for (int i = 0; i < 3; ++i) envs.push_back(inputsFor(source, i));
    std::vector<const ir::Env*> lanes;
    for (const ir::Env& env : envs) lanes.push_back(&env);

    compiler::FheRuntime packed_rt(smallParams());
    const compiler::PackedRunResult packed =
        packed_rt.runPacked(compiled.program, lanes, plan, fit.stride);
    ASSERT_EQ(packed.lane_outputs.size(), 3u);
    EXPECT_GT(packed.shared.final_noise_budget, 0);

    for (int i = 0; i < 3; ++i) {
        compiler::FheRuntime solo_rt(smallParams());
        const compiler::RunResult solo =
            solo_rt.run(compiled.program, envs[static_cast<std::size_t>(i)],
                        plan);
        EXPECT_EQ(packed.lane_outputs[static_cast<std::size_t>(i)],
                  solo.output)
            << "lane " << i;
    }
}

// ---- cross-kernel packing ---------------------------------------------

TEST(ServiceBatchingTest, CrossKernelPackedOutputsBitIdenticalToSolo)
{
    // Three distinct kernels, distinct inputs, one parameter set: with
    // cross_kernel on they consolidate into shared rows; outputs must
    // equal the solo service's and the reference evaluator's, at 1 and
    // 8 workers (the acceptance contract for cross-kernel packing).
    const std::vector<ir::ExprPtr> sources = {
        ir::parse(dotSource(4)), ir::parse(dotSource(3)),
        ir::parse("(+ (* a0 b0) b1)")};
    auto makeBatch = [&sources] {
        std::vector<RunRequest> batch;
        for (int i = 0; i < 12; ++i) {
            batch.push_back(laneRequest(
                "k" + std::to_string(i),
                sources[static_cast<std::size_t>(i) % sources.size()],
                i));
        }
        return batch;
    };
    const auto solo =
        runAndSnapshot(batchedConfig(2, /*max_lanes=*/1, 0.0),
                       makeBatch());
    for (int workers : {1, 8}) {
        ServiceConfig config = batchedConfig(workers, 0, /*window=*/0.05);
        config.cross_kernel = true;
        const auto packed = runAndSnapshot(config, makeBatch());
        ASSERT_EQ(solo.size(), packed.size()) << workers << " workers";
        for (const auto& [name, solo_snap] : solo) {
            ASSERT_TRUE(packed.count(name)) << name;
            EXPECT_EQ(solo_snap.output, packed.at(name).output)
                << name << " at " << workers << " workers";
        }
    }
    for (int i = 0; i < 12; ++i) {
        const ir::ExprPtr& source =
            sources[static_cast<std::size_t>(i) % sources.size()];
        const ir::Value expected =
            ir::Evaluator().evaluate(source, inputsFor(source, i));
        EXPECT_EQ(solo.at("k" + std::to_string(i)).output[0],
                  expected.slots[0]);
    }
}

TEST(ServiceBatchingTest, CrossKernelConsolidatesWindowFlushedGroups)
{
    // Two kernels with two requests each against an 8-lane cap: neither
    // fills a row alone, so per-artifact mode executes two window
    // flushed groups, while cross-kernel mode consolidates them into
    // one composite row of 4 lanes spanning 2 members.
    const ir::ExprPtr source_a = ir::parse(dotSource(4));
    const ir::ExprPtr source_b = ir::parse(dotSource(3));
    auto makeBatch = [&] {
        std::vector<RunRequest> batch;
        for (int i = 0; i < 2; ++i) {
            batch.push_back(laneRequest("a" + std::to_string(i),
                                        source_a, i));
            batch.push_back(laneRequest("b" + std::to_string(i),
                                        source_b, i));
        }
        return batch;
    };
    {
        CompileService service(batchedConfig(2, 8, /*window=*/0.05));
        for (const RunResponse& response :
             service.runBatch(makeBatch())) {
            ASSERT_TRUE(response.ok)
                << response.name << ": " << response.error;
            EXPECT_EQ(response.packed_lanes, 2) << response.name;
        }
        const ServiceStats stats = service.stats();
        EXPECT_EQ(stats.packed_groups, 2u);
        EXPECT_EQ(stats.composite_groups, 0u);
    }
    {
        ServiceConfig config = batchedConfig(2, 8, /*window=*/0.05);
        config.cross_kernel = true;
        CompileService service(config);
        for (const RunResponse& response :
             service.runBatch(makeBatch())) {
            ASSERT_TRUE(response.ok)
                << response.name << ": " << response.error;
            EXPECT_EQ(response.packed_lanes, 4) << response.name;
        }
        const ServiceStats stats = service.stats();
        EXPECT_EQ(stats.packed_groups, 1u);
        EXPECT_EQ(stats.composite_groups, 1u);
        EXPECT_EQ(stats.composite_members, 2u);
        EXPECT_EQ(stats.packed_lanes, 4u);
        EXPECT_EQ(stats.composite_cache_misses, 1u);
    }
}

TEST(ServiceBatchingTest, CrossKernelLaneOrderIsContentDeterministic)
{
    // Submitting the same mixed batch in different orders must produce
    // the same composite lane assignment per request: lane order is a
    // content hash of the member run keys, never the arrival order.
    const std::vector<ir::ExprPtr> sources = {ir::parse(dotSource(4)),
                                              ir::parse(dotSource(3))};
    auto makeBatch = [&sources](bool reversed) {
        std::vector<RunRequest> batch;
        for (int i = 0; i < 4; ++i) {
            batch.push_back(laneRequest(
                "k" + std::to_string(i),
                sources[static_cast<std::size_t>(i) % sources.size()],
                i));
        }
        if (reversed) std::reverse(batch.begin(), batch.end());
        return batch;
    };
    std::map<std::string, int> forward_lanes;
    std::map<std::string, int> reversed_lanes;
    for (bool reversed : {false, true}) {
        ServiceConfig config = batchedConfig(1, 8, /*window=*/0.05);
        config.cross_kernel = true;
        CompileService service(config);
        for (const RunResponse& response :
             service.runBatch(makeBatch(reversed))) {
            ASSERT_TRUE(response.ok)
                << response.name << ": " << response.error;
            EXPECT_EQ(response.packed_lanes, 4) << response.name;
            (reversed ? reversed_lanes
                      : forward_lanes)[response.name] = response.lane;
        }
    }
    EXPECT_EQ(forward_lanes, reversed_lanes);
}

// ---- group-identity memoization ---------------------------------------

TEST(ServiceBatchingTest, FitMemoHitsOncePerGroupIdentity)
{
    // Eight distinct-input requests of one kernel share one group
    // identity: the lane-safety analysis runs once (miss), the other
    // seven owners hit the memo. A second kernel adds exactly one more
    // miss.
    const ir::ExprPtr source_a = ir::parse(dotSource(4));
    const ir::ExprPtr source_b = ir::parse(dotSource(3));
    CompileService service(batchedConfig(2, 8, /*window=*/0.05));
    std::vector<RunRequest> batch;
    for (int i = 0; i < 8; ++i) {
        batch.push_back(laneRequest("a" + std::to_string(i), source_a, i));
    }
    for (const RunResponse& response : service.runBatch(std::move(batch))) {
        ASSERT_TRUE(response.ok) << response.name << ": " << response.error;
    }
    ServiceStats stats = service.stats();
    EXPECT_EQ(stats.fit_memo_misses, 1u);
    EXPECT_EQ(stats.fit_memo_hits, 7u);

    std::vector<RunRequest> second;
    for (int i = 0; i < 4; ++i) {
        second.push_back(laneRequest("b" + std::to_string(i), source_b, i));
    }
    for (const RunResponse& response :
         service.runBatch(std::move(second))) {
        ASSERT_TRUE(response.ok) << response.name << ": " << response.error;
    }
    stats = service.stats();
    EXPECT_EQ(stats.fit_memo_misses, 2u);
    EXPECT_EQ(stats.fit_memo_hits, 10u);

    // Same kernel, different effective budget: a new group identity.
    std::vector<RunRequest> budgeted;
    budgeted.push_back(laneRequest("c0", source_a, 0, /*key_budget=*/2));
    for (const RunResponse& response :
         service.runBatch(std::move(budgeted))) {
        ASSERT_TRUE(response.ok) << response.name << ": " << response.error;
    }
    stats = service.stats();
    EXPECT_EQ(stats.fit_memo_misses, 3u);
}

// ---- flusher shutdown: drain-on-stop ----------------------------------

TEST(ServiceBatchingTest, ShutdownDrainsPendingGroups)
{
    // Three lanes sit in a pending group whose window (30 s) never
    // expires and whose capacity (8) is never reached; destroying the
    // service must stop the flusher, drain the planner and settle every
    // outstanding future — packed, in order, before any member the
    // tasks touch is torn down (TSan checks the ordering).
    const ir::ExprPtr source = ir::parse(dotSource(4));
    std::vector<std::future<RunResponse>> futures;
    {
        CompileService service(batchedConfig(2, 8, /*window=*/30.0));
        for (int i = 0; i < 3; ++i) {
            futures.push_back(service.submitRun(
                laneRequest("k" + std::to_string(i), source, i)));
        }
        // Wait until the lanes actually reach the planner (the compile
        // stage settles asynchronously) so the destructor exercises the
        // drain path, not the not-yet-coalesced one.
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(20);
        while (service.stats().compiled < 1 &&
               std::chrono::steady_clock::now() < deadline) {
            std::this_thread::yield();
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    for (int i = 0; i < 3; ++i) {
        ASSERT_EQ(futures[static_cast<std::size_t>(i)].wait_for(
                      std::chrono::seconds(0)),
                  std::future_status::ready)
            << "future " << i << " not settled by shutdown";
        const RunResponse response =
            futures[static_cast<std::size_t>(i)].get();
        ASSERT_TRUE(response.ok)
            << response.name << ": " << response.error;
        const ir::Value expected = ir::Evaluator().evaluate(
            source, inputsFor(source, i));
        EXPECT_EQ(response.result.output[0], expected.slots[0])
            << response.name;
    }
}

// ---- counter consistency under concurrency (exercised by TSan CI) -----

TEST(ServiceBatchingTest, ConcurrentRunBatchAndStatsConsistency)
{
    // The audit invariants: every counter is written under its guarding
    // mutex and the aggregate identities below hold for any quiescent
    // snapshot, at any worker count, with the coalescer on. stats() is
    // hammered concurrently so TSan can prove the reads are not torn.
    const ir::ExprPtr source_a = ir::parse(dotSource(4));
    const ir::ExprPtr source_b = ir::parse(dotSource(3));
    CompileService service(batchedConfig(4, 4, /*window=*/0.02));

    std::atomic<bool> done{false};
    std::thread poller([&service, &done] {
        while (!done.load()) {
            const ServiceStats snap = service.stats();
            // Monotonic counters can never make hits exceed lookups.
            EXPECT_LE(snap.run_cache.hits + snap.run_cache.inflight_joins +
                          snap.run_cache.misses,
                      snap.run_submitted);
            std::this_thread::yield();
        }
    });

    const int threads = 4;
    const int per_thread = 10;
    std::vector<std::thread> submitters;
    for (int t = 0; t < threads; ++t) {
        submitters.emplace_back([&, t] {
            std::vector<RunRequest> batch;
            for (int i = 0; i < per_thread; ++i) {
                const ir::ExprPtr& source =
                    (i % 2 == 0) ? source_a : source_b;
                // Mix distinct inputs with cross-thread duplicates.
                const int index = (i % 3 == 0) ? i : t * 100 + i;
                batch.push_back(laneRequest(
                    "t" + std::to_string(t) + "i" + std::to_string(i),
                    source, index));
            }
            for (RunResponse& response :
                 service.runBatch(std::move(batch))) {
                EXPECT_TRUE(response.ok)
                    << response.name << ": " << response.error;
            }
        });
    }
    for (std::thread& thread : submitters) thread.join();
    done.store(true);
    poller.join();

    const ServiceStats stats = service.stats();
    // The aggregate identities (cache acquires vs. submissions, owner
    // outcomes, executions per group) live in one place now; an empty
    // string means every cross-counter invariant held.
    EXPECT_EQ(checkStatsInvariants(stats, /*quiescent=*/true), "");
    EXPECT_EQ(stats.run_failed, 0u);
}

// ---- telemetry --------------------------------------------------------

TEST(ServiceBatchingTest, TracedPackedRunIsBitIdenticalAndWellNested)
{
    // The determinism contract: enabling telemetry never changes
    // scheduling decisions or outputs. And the trace itself must be a
    // forest of well-nested spans: compile/execute inside the dispatch
    // span of the same worker, the execute sub-phases inside execute.
    const ir::ExprPtr source = ir::parse(dotSource(4));
    auto makeBatch = [&source] {
        std::vector<RunRequest> batch;
        for (int i = 0; i < 8; ++i) {
            batch.push_back(
                laneRequest("k" + std::to_string(i), source, i));
        }
        return batch;
    };

    const auto untraced =
        runAndSnapshot(batchedConfig(8, 4, 1.0), makeBatch());

    ServiceConfig config = batchedConfig(8, 4, 1.0);
    config.telemetry = true;
    CompileService service(config);
    std::map<std::string, Snapshot> traced;
    for (RunResponse& response : service.runBatch(makeBatch())) {
        EXPECT_TRUE(response.ok)
            << response.name << ": " << response.error;
        Snapshot snap;
        snap.output = response.result.output;
        snap.fresh = response.result.fresh_noise_budget;
        snap.final_budget = response.result.final_noise_budget;
        snap.consumed = response.result.consumed_noise;
        snap.keys = response.result.rotation_keys;
        snap.packed_lanes = response.packed_lanes;
        snap.lane = response.lane;
        traced[response.name] = snap;
    }

    ASSERT_EQ(untraced.size(), traced.size());
    for (const auto& [name, snap] : untraced) {
        ASSERT_TRUE(traced.count(name)) << name;
        const Snapshot& other = traced.at(name);
        EXPECT_EQ(snap.output, other.output) << name;
        EXPECT_EQ(snap.fresh, other.fresh) << name;
        EXPECT_EQ(snap.final_budget, other.final_budget) << name;
        EXPECT_EQ(snap.consumed, other.consumed) << name;
        EXPECT_EQ(snap.keys, other.keys) << name;
        EXPECT_EQ(snap.packed_lanes, other.packed_lanes) << name;
        EXPECT_EQ(snap.lane, other.lane) << name;
    }

    // Futures resolve from inside worker tasks, so wait for the final
    // dispatch spans' epilogues before asserting on the trace.
    service.drain();
    const ServiceStats stats = service.stats();
    EXPECT_EQ(checkStatsInvariants(stats, /*quiescent=*/true), "");
    EXPECT_TRUE(stats.telemetry.enabled);
    EXPECT_EQ(stats.telemetry.dropped, 0u);

    const std::vector<telemetry::TraceEvent> events =
        service.telemetry().events();
    auto spansNamed = [&events](const char* name) {
        std::vector<const telemetry::TraceEvent*> matched;
        for (const telemetry::TraceEvent& event : events) {
            if (!event.isInstant() &&
                std::string_view(event.name) == name) {
                matched.push_back(&event);
            }
        }
        return matched;
    };
    auto containedIn = [](const telemetry::TraceEvent& inner,
                          const std::vector<const telemetry::TraceEvent*>&
                              outers) {
        for (const telemetry::TraceEvent* outer : outers) {
            if (outer->tid == inner.tid &&
                outer->start_ns <= inner.start_ns &&
                inner.end_ns <= outer->end_ns) {
                return true;
            }
        }
        return false;
    };

    // One enqueue span per submission; one execute span per execution.
    EXPECT_EQ(spansNamed("enqueue").size(), std::size_t{8});
    EXPECT_EQ(spansNamed("execute").size(),
              static_cast<std::size_t>(stats.executed));

    const auto dispatch = spansNamed("dispatch");
    const auto execute = spansNamed("execute");
    EXPECT_FALSE(dispatch.empty());
    for (const char* name : {"compile", "execute"}) {
        for (const telemetry::TraceEvent* span : spansNamed(name)) {
            EXPECT_TRUE(containedIn(*span, dispatch))
                << name << " span at " << span->start_ns
                << " ns has no enclosing dispatch span on tid "
                << span->tid;
        }
    }
    for (const char* name : {"setup", "evaluate", "decode"}) {
        for (const telemetry::TraceEvent* span : spansNamed(name)) {
            EXPECT_TRUE(containedIn(*span, execute))
                << name << " span at " << span->start_ns
                << " ns has no enclosing execute span on tid "
                << span->tid;
        }
    }
}

} // namespace
} // namespace chehab::service
