/// \file
/// SIMD differential suite for the AVX2 NTT hot path: the vector
/// kernels must be bit-identical to the scalar Harvey path and the seed
/// baseline for every dispatch mode, including boundary operands deep
/// in the lazy domain (p-1, 2p-1, 4p-1), the tiny degrees the
/// dispatcher keeps scalar (n = 1, 2, 4), and random lane fuzz with the
/// process-wide switch toggled both ways. Also pins the PR 10 bugfix
/// pair: n^-1 mod p is memoized in the shared table cache (no repeated
/// inversions or root searches per transform), and the vector path's
/// p < 2^62 precondition aborts instead of silently overflowing.
#include <gtest/gtest.h>

#include <cstdint>
#include <iterator>
#include <vector>

#include "fhe/modarith.h"
#include "fhe/ntt.h"
#include "support/rng.h"

namespace chehab::fhe {
namespace {

/// Restores the process-wide SIMD switch around each test so a failing
/// assertion cannot leak a forced mode into unrelated tests.
class NttSimdTest : public ::testing::Test
{
  protected:
    void SetUp() override { initial_ = simdEnabled(); }
    void TearDown() override { setSimdEnabled(initial_); }

  private:
    bool initial_ = false;
};

std::vector<std::uint64_t>
randomPoly(Rng& rng, int n, std::uint64_t p)
{
    std::vector<std::uint64_t> poly(static_cast<std::size_t>(n));
    for (auto& c : poly) c = rng.uniformInt(p);
    return poly;
}

/// Primes spanning the supported range; SealLite's chains stay ~30-bit
/// but NttTables accepts anything below 2^62.
std::vector<std::uint64_t>
testPrimes()
{
    return {
        findNttPrimes(30, 1, 512)[0],
        findNttPrimes(45, 1, 512)[0],
        findNttPrimes(61, 1, 512)[0],
    };
}

TEST_F(NttSimdTest, DispatchIsBitIdenticalToScalarAndBaseline)
{
    Rng rng(21);
    for (const std::uint64_t p : testPrimes()) {
        for (const int n : {8, 32, 128, 256}) {
            const NttTables tables(n, p);
            for (int trial = 0; trial < 4; ++trial) {
                const auto input = randomPoly(rng, n, p);

                auto scalar = input;
                tables.forwardScalar(scalar.data());

                auto baseline = input;
                tables.forwardBaseline(baseline.data());
                ASSERT_EQ(scalar, baseline) << "p=" << p << " n=" << n;

                for (const bool simd : {false, true}) {
                    setSimdEnabled(simd);
                    auto dispatched = input;
                    tables.forward(dispatched.data());
                    ASSERT_EQ(dispatched, scalar)
                        << "forward p=" << p << " n=" << n
                        << " simd=" << simd;

                    tables.inverse(dispatched.data());
                    auto inv_scalar = scalar;
                    tables.inverseScalar(inv_scalar.data());
                    ASSERT_EQ(dispatched, inv_scalar)
                        << "inverse p=" << p << " n=" << n
                        << " simd=" << simd;
                    ASSERT_EQ(dispatched, input)
                        << "round-trip p=" << p << " n=" << n
                        << " simd=" << simd;
                }
            }
        }
    }
}

TEST_F(NttSimdTest, BoundaryOperandsDeepInTheLazyDomain)
{
    // The Harvey butterflies accept inputs beyond [0, p): u is lazily
    // reduced from [0, 4p) and the Shoup multiply takes any 64-bit
    // operand. The vector lanes must take the exact same reduction
    // sequence, so out-of-range inputs are part of the bit-identity
    // contract, not undefined behavior.
    for (const std::uint64_t p : testPrimes()) {
        const int n = 64;
        const NttTables tables(n, p);
        const std::uint64_t edges[] = {0,         1,         p - 1,
                                       p,         2 * p - 1, 2 * p,
                                       4 * p - 1};
        std::vector<std::uint64_t> input(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i) {
            input[static_cast<std::size_t>(i)] =
                edges[static_cast<std::size_t>(i) % std::size(edges)];
        }

        auto scalar = input;
        tables.forwardScalar(scalar.data());
        setSimdEnabled(true);
        auto vec = input;
        tables.forward(vec.data());
        ASSERT_EQ(vec, scalar) << "forward p=" << p;

        auto inv_scalar = scalar;
        tables.inverseScalar(inv_scalar.data());
        tables.inverse(vec.data());
        ASSERT_EQ(vec, inv_scalar) << "inverse p=" << p;
    }
}

TEST_F(NttSimdTest, TinyDegreesStayScalarAndCorrect)
{
    // n < 8 never vectorizes (a 4-wide butterfly needs t >= 4), but the
    // dispatcher must still produce the exact scalar answer with SIMD
    // forced on.
    const std::uint64_t p = findNttPrimes(30, 1, 512)[0];
    setSimdEnabled(true);
    for (const int n : {1, 2, 4}) {
        const NttTables tables(n, p);
        Rng rng(static_cast<std::uint64_t>(n) + 33);
        const auto input = randomPoly(rng, n, p);
        auto dispatched = input;
        auto scalar = input;
        tables.forward(dispatched.data());
        tables.forwardScalar(scalar.data());
        ASSERT_EQ(dispatched, scalar) << "n=" << n;
        tables.inverse(dispatched.data());
        tables.inverseScalar(scalar.data());
        ASSERT_EQ(dispatched, scalar) << "n=" << n;
        ASSERT_EQ(dispatched, input) << "n=" << n;
    }
}

TEST_F(NttSimdTest, LaneFuzzAcrossDispatchModes)
{
    // Odd sizes around the 4-lane width: every tail/alignment case the
    // stage loops can hit, fuzzed with the switch toggled per trial.
    Rng rng(22);
    const std::uint64_t p = findNttPrimes(31, 1, 2048)[0];
    for (const int n : {8, 16, 512, 1024}) {
        const NttTables tables(n, p);
        for (int trial = 0; trial < 8; ++trial) {
            const auto input = randomPoly(rng, n, p);
            setSimdEnabled(trial % 2 == 0);
            auto a = input;
            tables.forward(a.data());
            setSimdEnabled(trial % 2 != 0);
            auto b = input;
            tables.forward(b.data());
            ASSERT_EQ(a, b) << "n=" << n << " trial=" << trial;
            setSimdEnabled(true);
            tables.inverse(a.data());
            setSimdEnabled(false);
            tables.inverse(b.data());
            ASSERT_EQ(a, b) << "n=" << n << " trial=" << trial;
            ASSERT_EQ(a, input) << "n=" << n << " trial=" << trial;
        }
    }
}

TEST_F(NttSimdTest, ForcingSimdOnScalarBuildsClampsToSupported)
{
    setSimdEnabled(true);
    EXPECT_EQ(simdEnabled(), simdSupported());
    setSimdEnabled(false);
    EXPECT_FALSE(simdEnabled());
}

// -- PR 10 bugfix pins --------------------------------------------------

TEST_F(NttSimdTest, InvNMemoizedInTableCache)
{
    const std::uint64_t p = findNttPrimes(30, 1, 1024)[0];
    const auto tables = acquireNttTables(512, p);
    // n * n^-1 ≡ 1 (mod p), computed once at construction.
    EXPECT_EQ(static_cast<std::uint64_t>(
                  static_cast<__uint128_t>(tables->invN()) * 512 % p),
              1u);
    // Re-acquiring the same (n, p) is a cache hit and performs no new
    // inversion or root/prime search work.
    const std::uint64_t roots_before = primitiveRootSearches();
    const std::uint64_t primes_before = nttPrimeSearches();
    const NttTableCacheStats cache_before = nttTableCacheStats();
    const auto again = acquireNttTables(512, p);
    EXPECT_EQ(again.get(), tables.get());
    EXPECT_EQ(again->invN(), tables->invN());
    EXPECT_EQ(primitiveRootSearches(), roots_before);
    EXPECT_EQ(nttPrimeSearches(), primes_before);
    EXPECT_EQ(nttTableCacheStats().hits, cache_before.hits + 1);
}

#if GTEST_HAS_DEATH_TEST
TEST(NttSimdDeathTest, RejectsPrimesAtOrAbove62Bits)
{
    // The lazy representation needs 4p < 2^64; the vector path relies
    // on it too (lane values in [0, 4p) must not wrap). Find a 63-bit
    // prime ≡ 1 (mod 8) so only the width precondition trips.
    std::uint64_t p = (1ULL << 62) + 1;
    while (!isPrime(p) || p % 8 != 1) p += 8;
    ASSERT_GE(p, 1ULL << 62);
    EXPECT_DEATH({ NttTables tables(4, p); }, "2\\^64");
}
#endif

} // namespace
} // namespace chehab::fhe
