/// \file
/// Tests for the reference slot-semantics evaluator and the randomized
/// prefix-equivalence oracle used by the TRS soundness suite.
#include <gtest/gtest.h>

#include "ir/evaluator.h"
#include "ir/parser.h"
#include "support/error.h"

namespace chehab::ir {
namespace {

Value
evalText(const std::string& text, const Env& env)
{
    return Evaluator().evaluate(parse(text), env);
}

TEST(EvaluatorTest, ScalarArithmetic)
{
    const Env env{{"a", 7}, {"b", 5}};
    EXPECT_EQ(evalText("(+ a b)", env).scalar(), 12);
    EXPECT_EQ(evalText("(- a b)", env).scalar(), 2);
    EXPECT_EQ(evalText("(* a b)", env).scalar(), 35);
    EXPECT_EQ(evalText("(- a)", env).scalar(), 65537 - 7);
}

TEST(EvaluatorTest, ModularReduction)
{
    const Env env{{"a", 65536}, {"b", 2}};
    EXPECT_EQ(evalText("(+ a b)", env).scalar(), 1);
    EXPECT_EQ(evalText("(* a b)", env).scalar(), 65535);
}

TEST(EvaluatorTest, VectorConstruction)
{
    const Env env{{"a", 1}, {"b", 2}, {"c", 3}};
    const Value v = evalText("(Vec a b c)", env);
    EXPECT_TRUE(v.is_vector);
    EXPECT_EQ(v.slots, (std::vector<std::int64_t>{1, 2, 3}));
}

TEST(EvaluatorTest, ElementwiseOps)
{
    const Env env{{"a", 1}, {"b", 2}, {"c", 3}, {"d", 4}};
    EXPECT_EQ(evalText("(VecAdd (Vec a b) (Vec c d))", env).slots,
              (std::vector<std::int64_t>{4, 6}));
    EXPECT_EQ(evalText("(VecMul (Vec a b) (Vec c d))", env).slots,
              (std::vector<std::int64_t>{3, 8}));
    EXPECT_EQ(evalText("(VecSub (Vec c d) (Vec a b))", env).slots,
              (std::vector<std::int64_t>{2, 2}));
}

TEST(EvaluatorTest, RotationMatchesPaperConvention)
{
    // [1, 2, 3] << 1 == [2, 3, 1] (§3.1).
    const Env env{{"a", 1}, {"b", 2}, {"c", 3}};
    EXPECT_EQ(evalText("(<< (Vec a b c) 1)", env).slots,
              (std::vector<std::int64_t>{2, 3, 1}));
    EXPECT_EQ(evalText("(>> (Vec a b c) 1)", env).slots,
              (std::vector<std::int64_t>{3, 1, 2}));
    // Steps wrap modulo the width.
    EXPECT_EQ(evalText("(<< (Vec a b c) 4)", env).slots,
              (std::vector<std::int64_t>{2, 3, 1}));
}

TEST(EvaluatorTest, UnboundVariableThrows)
{
    EXPECT_THROW(evalText("(+ a zz)", Env{{"a", 1}}), CompileError);
}

TEST(EvaluatorTest, ShapeErrorsThrow)
{
    const Env env{{"a", 1}, {"b", 2}, {"c", 3}};
    EXPECT_THROW(evalText("(VecAdd (Vec a b) (Vec a b c))", env),
                 CompileError);
}

TEST(EquivalenceTest, DetectsEquivalentRewrites)
{
    // Factorization is semantics-preserving.
    EXPECT_TRUE(equivalentOn(parse("(+ (* a b) (* a c))"),
                             parse("(* a (+ b c))"), 16));
    // Vectorization of isomorphic adds.
    EXPECT_TRUE(equivalentOn(parse("(Vec (+ a b) (+ c d))"),
                             parse("(VecAdd (Vec a c) (Vec b d))"), 16));
}

TEST(EquivalenceTest, DetectsBrokenRewrites)
{
    EXPECT_FALSE(equivalentOn(parse("(+ a b)"), parse("(* a b)"), 16));
    EXPECT_FALSE(equivalentOn(parse("(Vec (+ a b) (+ c d))"),
                              parse("(VecAdd (Vec a c) (Vec d b))"), 16));
}

TEST(EquivalenceTest, PrefixSemanticsAllowsWidening)
{
    // Dot product: scalar sum of products vs rotate-reduce circuit whose
    // slot 0 holds the result and whose upper slots hold junk.
    const ExprPtr reference = parse("(+ (* a b) (* c d))");
    const ExprPtr widened =
        parse("(VecAdd (VecMul (Vec a c) (Vec b d))"
              "        (<< (VecMul (Vec a c) (Vec b d)) 1))");
    EXPECT_TRUE(equivalentOn(reference, widened, 16));
}

TEST(EquivalenceTest, WideningMustKeepPrefix)
{
    const ExprPtr reference = parse("(Vec (+ a b) (+ c d))");
    // Wrong slot order: prefix differs.
    const ExprPtr wrong = parse("(VecAdd (Vec c a d) (Vec d b 0))");
    EXPECT_FALSE(equivalentOn(reference, wrong, 16));
}

TEST(EquivalenceTest, DeterministicUnderSeed)
{
    const ExprPtr a = parse("(+ (* a b) (* a c))");
    const ExprPtr b = parse("(* a (+ b c))");
    EXPECT_EQ(equivalentOn(a, b, 8, 7), equivalentOn(a, b, 8, 7));
}

} // namespace
} // namespace chehab::ir
