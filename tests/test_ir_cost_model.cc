/// \file
/// Tests for the FHE-aware analytical cost function (§5.3.1), including
/// the motivating-example accounting that drives the reward.
#include <gtest/gtest.h>

#include "ir/cost_model.h"
#include "ir/parser.h"

namespace chehab::ir {
namespace {

TEST(CostModelTest, PaperDefaults)
{
    const OpCosts costs;
    EXPECT_DOUBLE_EQ(costs.vec_add, 1.0);
    EXPECT_DOUBLE_EQ(costs.vec_mul, 100.0);
    EXPECT_DOUBLE_EQ(costs.rotation, 50.0);
    EXPECT_DOUBLE_EQ(costs.scalar_op, 250.0);
}

TEST(CostModelTest, ScalarOpsChargedFlat)
{
    EXPECT_DOUBLE_EQ(operationCost(parse("(+ a b)")), 250.0);
    EXPECT_DOUBLE_EQ(operationCost(parse("(* a b)")), 250.0);
    EXPECT_DOUBLE_EQ(operationCost(parse("(- a)")), 250.0);
}

TEST(CostModelTest, VectorOpsCheap)
{
    EXPECT_DOUBLE_EQ(operationCost(parse("(VecAdd (Vec a b) (Vec c d))")),
                     1.0);
    EXPECT_DOUBLE_EQ(operationCost(parse("(VecMul (Vec a b) (Vec c d))")),
                     100.0);
    EXPECT_DOUBLE_EQ(operationCost(parse("(<< (Vec a b) 1)")), 50.0);
}

TEST(CostModelTest, LeavesAndPackingFree)
{
    EXPECT_DOUBLE_EQ(operationCost(parse("a")), 0.0);
    EXPECT_DOUBLE_EQ(operationCost(parse("(Vec a b c d)")), 0.0);
}

TEST(CostModelTest, PlainArithmeticFree)
{
    EXPECT_DOUBLE_EQ(operationCost(parse("(* (pt a) (pt b))")), 0.0);
    EXPECT_DOUBLE_EQ(operationCost(parse("(* (* (pt a) (pt b)) x)")), 250.0);
}

TEST(CostModelTest, SharedSubtreesChargedOnce)
{
    // (* v3 v4) is shared: 4 unique muls + 1 add.
    const ExprPtr e = parse("(+ (* (* v1 v2) (* v3 v4)) (* (* v3 v4) v5))");
    EXPECT_DOUBLE_EQ(operationCost(e), 4 * 250.0 + 250.0);
}

TEST(CostModelTest, WeightedCostCombinesDepthTerms)
{
    const ExprPtr e = parse("(* (* a b) c)");
    // ops = 2 * 250, depth = 2, mult depth = 2.
    EXPECT_DOUBLE_EQ(cost(e), 500.0 + 2.0 + 2.0);
    const CostWeights heavy{1.0, 100.0, 100.0};
    EXPECT_DOUBLE_EQ(cost(e, heavy), 500.0 + 200.0 + 200.0);
}

TEST(CostModelTest, VectorizationLowersCost)
{
    // Two scalar adds vs one packed vector add.
    const double scalar = cost(parse("(Vec (+ a b) (+ c d))"));
    const double vectorized = cost(parse("(VecAdd (Vec a c) (Vec b d))"));
    EXPECT_LT(vectorized, scalar);
}

TEST(CostModelTest, MotivatingExampleImprovement)
{
    // Eq. 1 (9 unique muls, 1 add, shared (* v3 v4) counted once).
    const ExprPtr scalar = parse(
        "(* (+ (* (* v1 v2) (* v3 v4)) (* (* v3 v4) (* v5 v6)))"
        "   (* (* v7 v8) (* v9 v10)))");
    // A vectorized circuit in the spirit of Fig. 2a.
    const ExprPtr vectorized = parse(
        "(* (* (* v3 v4) (+ (* v1 v2) (* v5 v6))) (* (* v7 v8) (* v9 v10)))");
    EXPECT_LT(cost(vectorized), cost(scalar));
}

TEST(CostModelTest, CustomOpCosts)
{
    OpCosts costs;
    costs.rotation = 10.0;
    EXPECT_DOUBLE_EQ(operationCost(parse("(<< (Vec a b) 1)"), costs), 10.0);
}

} // namespace
} // namespace chehab::ir
