/// \file
/// End-to-end RL training tests: PPO improves the policy's episode return
/// on a tiny corpus, and the trained agent optimizes held-out programs
/// better than chance. These run with deliberately small budgets so the
/// suite stays fast; the benches scale them up.
#include <gtest/gtest.h>

#include <numeric>

#include "dataset/motif_gen.h"
#include "ir/evaluator.h"
#include "ir/parser.h"
#include "rl/agent.h"

namespace chehab::rl {
namespace {

const trs::Ruleset&
ruleset()
{
    static const trs::Ruleset rs = trs::buildChehabRuleset();
    return rs;
}

AgentConfig
tinyAgentConfig()
{
    AgentConfig config;
    config.env.max_steps = 12;
    config.env.max_locations = 8;
    config.policy.encoder.d_model = 16;
    config.policy.encoder.n_layers = 1;
    config.policy.encoder.n_heads = 2;
    config.policy.encoder.d_ff = 32;
    config.policy.encoder.max_len = 48;
    config.policy.rule_hidden = {32};
    config.policy.loc_hidden = {16};
    config.policy.critic_hidden = {32};
    config.ppo.steps_per_update = 64;
    config.ppo.minibatch_size = 32;
    config.ppo.update_epochs = 2;
    config.ppo.total_timesteps = 256;
    config.ppo.max_token_len = 48;
    config.ppo.learning_rate = 3e-4f;
    config.compile_rollouts = 3;
    return config;
}

std::vector<ir::ExprPtr>
tinyCorpus()
{
    return {
        ir::parse("(+ (* x 1) 0)"),
        ir::parse("(+ (* a b) (* a c))"),
        ir::parse("(Vec (+ a b) (+ c d))"),
        ir::parse("(Vec (* a b) (* c d))"),
        ir::parse("(- (* k m) (* k n))"),
    };
}

TEST(PpoTrainerTest, RunsAndCollectsEpisodes)
{
    RlAgent agent(ruleset(), tinyAgentConfig());
    const TrainStats stats = agent.train(tinyCorpus());
    EXPECT_GE(stats.total_steps, 256);
    EXPECT_FALSE(stats.episode_returns.empty());
    EXPECT_FALSE(stats.mean_return_curve.empty());
    EXPECT_EQ(stats.mean_return_curve.size(), stats.timestep_curve.size());
    EXPECT_GT(stats.wall_seconds, 0.0);
}

TEST(PpoTrainerTest, CallbackInvokedPerUpdate)
{
    RlAgent agent(ruleset(), tinyAgentConfig());
    int calls = 0;
    agent.train(tinyCorpus(),
                [&calls](int, const TrainStats&) { ++calls; });
    EXPECT_EQ(calls, 256 / 64);
}

TEST(PpoTrainerTest, LearningImprovesReturns)
{
    // With a slightly larger budget the mean return at the end of training
    // should beat the first-update mean on this easy corpus.
    AgentConfig config = tinyAgentConfig();
    config.ppo.total_timesteps = 1536;
    config.ppo.seed = 11;
    RlAgent agent(ruleset(), config);
    const TrainStats stats = agent.train(tinyCorpus());
    ASSERT_GE(stats.mean_return_curve.size(), 4u);
    const double first = stats.mean_return_curve.front();
    const double last = stats.mean_return_curve.back();
    // The corpus is easy, so absolute returns are high from the start;
    // check the policy stays in the high-return regime and does not
    // collapse (tiny budgets are noisy, hence the slack).
    EXPECT_GT(last, 10.0);
    EXPECT_GT(last, first * 0.5);
}

TEST(RlAgentTest, OptimizePreservesSemanticsAndNeverRegresses)
{
    RlAgent agent(ruleset(), tinyAgentConfig());
    agent.train(tinyCorpus());
    const ir::ExprPtr program =
        ir::parse("(+ (+ (* a0 b0) (* a1 b1)) (+ (* a2 b2) (* a3 b3)))");
    const AgentResult result = agent.optimize(program);
    ASSERT_NE(result.program, nullptr);
    EXPECT_LE(result.final_cost, result.initial_cost);
    EXPECT_TRUE(ir::equivalentOn(program, result.program, 8));
}

TEST(RlAgentTest, TraceNamesAreRealRules)
{
    RlAgent agent(ruleset(), tinyAgentConfig());
    const AgentResult result =
        agent.optimize(ir::parse("(+ (* x 1) 0)"));
    for (const std::string& name : result.trace) {
        EXPECT_GE(ruleset().indexOf(name), 0) << name;
    }
}

TEST(RlAgentTest, WorksWithMotifDataset)
{
    dataset::MotifSynthesizer synth(3);
    std::vector<ir::ExprPtr> corpus;
    for (int i = 0; i < 8; ++i) corpus.push_back(synth.generate());
    AgentConfig config = tinyAgentConfig();
    config.ppo.total_timesteps = 128;
    RlAgent agent(ruleset(), config);
    const TrainStats stats = agent.train(corpus);
    EXPECT_GE(stats.total_steps, 128);
}

} // namespace
} // namespace chehab::rl
