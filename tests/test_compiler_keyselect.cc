/// \file
/// Rotation-key selection tests (Appendix B): NAF correctness and the
/// worked example (13 steps, β = 9 -> at most 9 keys with valid
/// decompositions).
#include <gtest/gtest.h>

#include <numeric>

#include "compiler/keyselect.h"

namespace chehab::compiler {
namespace {

int
sumDigits(const std::vector<int>& digits)
{
    return std::accumulate(digits.begin(), digits.end(), 0);
}

TEST(NafTest, PaperExamples)
{
    // NAF(3) = 4 - 1; NAF(5) = 4 + 1 (App. B).
    EXPECT_EQ(sumDigits(nafDigits(3)), 3);
    EXPECT_EQ(nafDigits(3).size(), 2u);
    EXPECT_EQ(sumDigits(nafDigits(5)), 5);
    EXPECT_EQ(nafDigits(5).size(), 2u);
    EXPECT_EQ(nafDigits(4), (std::vector<int>{4}));
    EXPECT_EQ(nafDigits(1), (std::vector<int>{1}));
}

TEST(NafTest, DigitsAreSignedPowersOfTwoNonAdjacent)
{
    for (int value = 1; value <= 64; ++value) {
        const std::vector<int> digits = nafDigits(value);
        EXPECT_EQ(sumDigits(digits), value);
        for (int d : digits) {
            const int mag = d < 0 ? -d : d;
            EXPECT_EQ(mag & (mag - 1), 0) << value; // Power of two.
        }
        // Non-adjacency: no two digits at consecutive bit positions.
        for (std::size_t i = 0; i + 1 < digits.size(); ++i) {
            const int a = std::abs(digits[i]);
            const int b = std::abs(digits[i + 1]);
            EXPECT_GE(b / a, 4) << value;
        }
    }
}

TEST(NafTest, NegativeSteps)
{
    EXPECT_EQ(sumDigits(nafDigits(-3)), -3);
    EXPECT_EQ(sumDigits(nafDigits(-12)), -12);
}

TEST(KeySelectTest, UnderBudgetKeepsAllSteps)
{
    const RotationKeyPlan plan = selectRotationKeys({1, 2, 4}, 8);
    EXPECT_EQ(plan.numKeys(), 3);
    EXPECT_EQ(plan.decomposition.at(2), (std::vector<int>{2}));
}

TEST(KeySelectTest, AppendixBExample)
{
    // χ = {1,2,3,4,5,6,7,9,10,12,11,13,15}, β = 9: the appendix reaches
    // 9 keys instead of 13.
    const std::vector<int> chi = {1, 2, 3, 4, 5, 6, 7, 9, 10, 12, 11, 13, 15};
    const RotationKeyPlan plan = selectRotationKeys(chi, 9);
    EXPECT_LE(plan.numKeys(), 9);
    // Every step must be realizable from generated keys.
    for (int step : chi) {
        const std::vector<int>& parts = plan.decomposition.at(step);
        EXPECT_EQ(sumDigits(parts), step);
        for (int part : parts) {
            EXPECT_NE(std::find(plan.keys.begin(), plan.keys.end(), part),
                      plan.keys.end())
                << "step " << step << " needs missing key " << part;
        }
    }
}

TEST(KeySelectTest, TightBudgetDecomposesAggressively)
{
    const RotationKeyPlan plan =
        selectRotationKeys({3, 5, 7, 9, 11, 13, 15}, 4);
    EXPECT_LE(plan.numKeys(), 6); // Best effort; must not blow up.
    for (const auto& [step, parts] : plan.decomposition) {
        EXPECT_EQ(sumDigits(parts), step);
    }
}

TEST(KeySelectTest, ZeroStepNeedsNoKey)
{
    const RotationKeyPlan plan = selectRotationKeys({0, 1}, 4);
    EXPECT_EQ(plan.numKeys(), 1);
    EXPECT_TRUE(plan.decomposition.at(0).empty());
}

} // namespace
} // namespace chehab::compiler
