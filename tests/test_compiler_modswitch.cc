/// \file
/// Mid-circuit modulus switching, bottom to top: SealLite::modSwitchTo
/// exactness (decoded plaintext unchanged per drop, ops still correct
/// at lower levels), the deterministic noise-bits model's gating
/// (drops allowed with headroom, refused when the margin or min-level
/// would be violated), the mod-switch pass's drop-point placement and
/// fingerprint coverage, and on-vs-off decode-level identity through
/// the runtime.
#include <gtest/gtest.h>

#include <vector>

#include "compiler/driver.h"
#include "compiler/modswitch.h"
#include "compiler/runtime.h"
#include "ir/parser.h"
#include "support/rng.h"
#include "trs/ruleset.h"

namespace chehab::compiler {
namespace {

fhe::SealLiteParams
smallParams()
{
    fhe::SealLiteParams params;
    params.n = 256;
    params.prime_count = 4;
    params.seed = 17;
    return params;
}

// -- SealLite::modSwitchTo ---------------------------------------------

TEST(ModSwitchSchemeTest, DropIsExactAtEveryLevel)
{
    fhe::SealLite scheme(smallParams());
    Rng rng(21);
    std::vector<std::int64_t> values(
        static_cast<std::size_t>(scheme.slots()));
    for (auto& v : values) {
        v = static_cast<std::int64_t>(rng.uniformInt(65537));
    }
    fhe::Ciphertext ct = scheme.encrypt(scheme.encode(values));
    ASSERT_EQ(scheme.level(ct), scheme.levels());
    // Stop at two primes: each drop leaves a noise floor of roughly
    // n·t²/2 (the centered t-correction times the plaintext scale),
    // which a single ~30-bit prime cannot carry with t = 65537 — the
    // reason the runtime gate floors the chain at min_level 2.
    for (int level = scheme.levels() - 1; level >= 2; --level) {
        scheme.modSwitchTo(ct, level);
        EXPECT_EQ(scheme.level(ct), level);
        EXPECT_EQ(scheme.decrypt(ct), values) << "level " << level;
        EXPECT_GT(scheme.noiseBudgetBits(ct), 0) << "level " << level;
    }
}

TEST(ModSwitchSchemeTest, OpsAfterDropMatchPlainSemantics)
{
    fhe::SealLite scheme(smallParams());
    const std::int64_t t = 65537;
    std::vector<std::int64_t> xs(static_cast<std::size_t>(scheme.slots()));
    std::vector<std::int64_t> ys(xs.size());
    Rng rng(22);
    for (std::size_t i = 0; i < xs.size(); ++i) {
        xs[i] = static_cast<std::int64_t>(rng.uniformInt(1000));
        ys[i] = static_cast<std::int64_t>(rng.uniformInt(1000));
    }
    fhe::Ciphertext a = scheme.encrypt(scheme.encode(xs));
    fhe::Ciphertext b = scheme.encrypt(scheme.encode(ys));
    // Drop both operands one level, then keep computing on them.
    scheme.modSwitchTo(a, scheme.levels() - 1);
    scheme.modSwitchTo(b, scheme.levels() - 1);
    const std::vector<std::int64_t> sum = scheme.decrypt(scheme.add(a, b));
    const std::vector<std::int64_t> product =
        scheme.decrypt(scheme.multiply(a, b));
    const std::vector<std::int64_t> rotated =
        [&] {
            scheme.makeGaloisKeys({1});
            return scheme.decrypt(scheme.rotate(a, 1));
        }();
    for (std::size_t i = 0; i < xs.size(); ++i) {
        EXPECT_EQ(sum[i], (xs[i] + ys[i]) % t);
        EXPECT_EQ(product[i], (xs[i] * ys[i]) % t);
        EXPECT_EQ(rotated[i], xs[(i + 1) % xs.size()]);
    }
}

// -- the noise model's gate --------------------------------------------

struct ModelFixture
{
    fhe::SealLite scheme{smallParams()};
    FheProgram program;
    RotationKeyPlan plan;
    modswitch::NoiseParams np;

    explicit ModelFixture(const std::string& text)
    {
        program = schedule(ir::parse(text));
        np = modswitch::noiseParamsFor(scheme, scheme.freshNoiseBudget());
    }

    /// Model state immediately before instruction \p next.
    modswitch::NoiseState
    stateAt(int next) const
    {
        modswitch::NoiseState state =
            modswitch::initialState(program, np);
        for (int i = 0; i < next; ++i) {
            modswitch::applyInstr(
                state, program.instrs[static_cast<std::size_t>(i)], np,
                plan);
        }
        return state;
    }

    /// Index one past the first ct-ct multiply (the spot the pass
    /// marks).
    int
    afterFirstMul() const
    {
        for (std::size_t i = 0; i < program.instrs.size(); ++i) {
            if (program.instrs[i].op == FheOpcode::Mul) {
                return static_cast<int>(i) + 1;
            }
        }
        return 0;
    }
};

TEST(ModSwitchModelTest, AllowsDropWithHeadroomRefusesWithoutIt)
{
    ModelFixture fx("(+ (* a b) c)");
    const int next = fx.afterFirstMul();
    ASSERT_GT(next, 0);
    const modswitch::NoiseState state = fx.stateAt(next);
    EXPECT_EQ(state.level, fx.scheme.levels());
    // A shallow circuit's one product at the full 4-prime chain leaves
    // primes of slack: a drop with the default margin must pass.
    EXPECT_TRUE(modswitch::canDropBefore(fx.program, next, state, fx.np,
                                         fx.plan, /*margin_bits=*/12,
                                         /*min_level=*/1));
    // An absurd margin consumes the whole post-drop modulus: refuse.
    EXPECT_FALSE(modswitch::canDropBefore(
        fx.program, next, state, fx.np, fx.plan,
        /*margin_bits=*/fx.np.level_bits.back(), /*min_level=*/1));
}

TEST(ModSwitchModelTest, MinLevelFloorsTheChain)
{
    // No remaining suffix: gate decisions at end-of-stream isolate the
    // level floor from suffix noise demand.
    ModelFixture fx("(+ a b)");
    const int end = static_cast<int>(fx.program.instrs.size());
    modswitch::NoiseState state = fx.stateAt(end);
    ASSERT_TRUE(modswitch::canDropBefore(fx.program, end, state, fx.np,
                                         fx.plan, /*margin_bits=*/12,
                                         /*min_level=*/3));
    modswitch::applyDrop(state, fx.np);
    EXPECT_EQ(state.level, fx.scheme.levels() - 1);
    // At the floor the gate refuses regardless of noise headroom ...
    EXPECT_FALSE(modswitch::canDropBefore(fx.program, end, state, fx.np,
                                          fx.plan, 12, /*min_level=*/3));
    // ... and the same state with a lower floor is allowed again.
    EXPECT_TRUE(modswitch::canDropBefore(fx.program, end, state, fx.np,
                                         fx.plan, 12, /*min_level=*/2));
}

TEST(ModSwitchModelTest, RefusesWhenRemainingSuffixIsTooDeep)
{
    // Chain a tower of multiplies: after the first product there is far
    // more noise demand left than one dropped prime leaves room for,
    // so the gate must keep the chain tall early on.
    ModelFixture fx("(* (* (* (* a b) c) d) e)");
    modswitch::NoiseState state =
        modswitch::initialState(fx.program, fx.np);
    int allowed_at_start = 0;
    while (modswitch::canDropBefore(fx.program, 0, state, fx.np, fx.plan,
                                    12, 1)) {
        modswitch::applyDrop(state, fx.np);
        ++allowed_at_start;
    }
    // The simulation covers the entire suffix, so it can never promise
    // more drops than the depth budget supports; with a 4-prime toy
    // chain and a depth-4 tower there is no room to drop everything.
    EXPECT_LT(allowed_at_start, fx.scheme.levels() - 1);
}

// -- the pass ----------------------------------------------------------

TEST(ModSwitchPassTest, MarksPointsAfterMulsAndFingerprints)
{
    const trs::Ruleset ruleset = trs::buildChehabRuleset();
    const CompilerDriver driver(&ruleset);
    const ir::ExprPtr source = ir::parse("(+ (* a b) (* c d))");

    DriverConfig off = DriverConfig::greedy({}, 12);
    DriverConfig on = off;
    on.passes.push_back("mod-switch");

    const Compiled without = driver.compile(source, off);
    EXPECT_TRUE(without.program.mod_switch.empty());

    const Compiled with = driver.compile(source, on);
    ASSERT_FALSE(with.program.mod_switch.empty());
    for (const int point : with.program.mod_switch.points) {
        ASSERT_GT(point, 0);
        ASSERT_LE(point,
                  static_cast<int>(with.program.instrs.size()));
        // Every marked point sits immediately after a ct-ct multiply.
        EXPECT_EQ(with.program.instrs[static_cast<std::size_t>(point - 1)]
                      .op,
                  FheOpcode::Mul);
    }
    // The instruction streams agree; only the plan differs — and the
    // plan is part of both the fingerprint and the disassembly.
    EXPECT_NE(off.fingerprint(), on.fingerprint());
    EXPECT_NE(without.program.disassemble(),
              with.program.disassemble());

    // The margin is a fingerprinted parameter of the pass when (and
    // only when) the pass is present.
    DriverConfig margin = on;
    margin.mod_switch_margin = 20;
    EXPECT_NE(on.fingerprint(), margin.fingerprint());
    DriverConfig margin_off = off;
    margin_off.mod_switch_margin = 20;
    EXPECT_EQ(off.fingerprint(), margin_off.fingerprint());
}

// -- end-to-end: on vs off ---------------------------------------------

TEST(ModSwitchRuntimeTest, DecodedOutputsIdenticalOnVsOff)
{
    const trs::Ruleset ruleset = trs::buildChehabRuleset();
    const CompilerDriver driver(&ruleset);
    // Rotate-reduce dot product: multiplies followed by adds and
    // rotations — real post-drop work for the gate to protect.
    const ir::ExprPtr source = ir::parse(
        "(VecAdd (VecMul (Vec a b c d) (Vec e f g h))"
        "        (<< (VecMul (Vec a b c d) (Vec e f g h)) 2))");
    const ir::Env env = {{"a", 3}, {"b", 1}, {"c", 4}, {"d", 1},
                         {"e", 5}, {"f", 9}, {"g", 2}, {"h", 6}};

    DriverConfig off = DriverConfig::greedy({}, 12);
    DriverConfig on = off;
    on.passes.push_back("mod-switch");

    FheRuntime runtime(smallParams());
    const RunResult plain = runtime.run(
        driver.compile(source, off).program, env);
    const RunResult switched = runtime.run(
        driver.compile(source, on).program, env);

    EXPECT_EQ(plain.mod_switch_drops, 0);
    EXPECT_GT(switched.mod_switch_drops, 0);
    EXPECT_EQ(plain.output, switched.output);
    // Drops spend modulus, not correctness: the budget (measured
    // against the smaller chain) must stay positive.
    EXPECT_GT(switched.final_noise_budget, 0);

    // Determinism: a second run takes exactly the same drops.
    const RunResult again = runtime.run(
        driver.compile(source, on).program, env);
    EXPECT_EQ(again.mod_switch_drops, switched.mod_switch_drops);
    EXPECT_EQ(again.output, switched.output);
}

} // namespace
} // namespace chehab::compiler
