/// \file
/// Tests for the checked CLI integer parser: garbage, trailing junk,
/// overflow and boundary values must be rejected (std::atoi, which this
/// replaced, silently returned 0 for "abc").
#include <gtest/gtest.h>

#include <climits>
#include <cstdint>
#include <string>

#include "support/parse_int.h"

namespace chehab {
namespace {

TEST(ParseIntTest, ParsesPlainIntegers)
{
    int out = -1;
    EXPECT_TRUE(parseInt("0", out));
    EXPECT_EQ(out, 0);
    EXPECT_TRUE(parseInt("42", out));
    EXPECT_EQ(out, 42);
    EXPECT_TRUE(parseInt("-7", out));
    EXPECT_EQ(out, -7);
    EXPECT_TRUE(parseInt("+13", out));
    EXPECT_EQ(out, 13);
    EXPECT_TRUE(parseInt("  8", out)); // strtol-style leading spaces.
    EXPECT_EQ(out, 8);
}

TEST(ParseIntTest, AcceptsIntBoundaries)
{
    int out = 0;
    EXPECT_TRUE(parseInt(std::to_string(INT_MAX).c_str(), out));
    EXPECT_EQ(out, INT_MAX);
    EXPECT_TRUE(parseInt(std::to_string(INT_MIN).c_str(), out));
    EXPECT_EQ(out, INT_MIN);
}

TEST(ParseIntTest, RejectsGarbageWithoutClobberingOutput)
{
    int out = 99;
    EXPECT_FALSE(parseInt("abc", out));
    EXPECT_FALSE(parseInt("", out));
    EXPECT_FALSE(parseInt(nullptr, out));
    EXPECT_FALSE(parseInt("12x", out));   // Trailing junk.
    EXPECT_FALSE(parseInt("1 2", out));   // Embedded space.
    EXPECT_FALSE(parseInt("4.5", out));   // Not an integer.
    EXPECT_FALSE(parseInt("--3", out));
    EXPECT_EQ(out, 99); // Failures leave the output untouched.
}

TEST(ParseIntTest, RejectsOverflow)
{
    int out = 7;
    // One past INT_MAX / INT_MIN, and far past long.
    EXPECT_FALSE(parseInt("2147483648", out));
    EXPECT_FALSE(parseInt("-2147483649", out));
    EXPECT_FALSE(parseInt("99999999999999999999999999", out));
    EXPECT_EQ(out, 7);
}

TEST(ParseInt64Test, ParsesPlainIntegers)
{
    std::int64_t out = -1;
    EXPECT_TRUE(parseInt64("0", out));
    EXPECT_EQ(out, 0);
    EXPECT_TRUE(parseInt64("-7", out));
    EXPECT_EQ(out, -7);
    EXPECT_TRUE(parseInt64("+13", out));
    EXPECT_EQ(out, 13);
    // Values past int but inside int64 — the reason the IR parser
    // cannot route literals through parseInt.
    EXPECT_TRUE(parseInt64("2147483648", out));
    EXPECT_EQ(out, 2147483648LL);
}

TEST(ParseInt64Test, AcceptsInt64Boundaries)
{
    std::int64_t out = 0;
    EXPECT_TRUE(parseInt64("9223372036854775807", out));
    EXPECT_EQ(out, INT64_MAX);
    EXPECT_TRUE(parseInt64("-9223372036854775808", out));
    EXPECT_EQ(out, INT64_MIN);
}

TEST(ParseInt64Test, RejectsGarbageAndOverflow)
{
    std::int64_t out = 99;
    EXPECT_FALSE(parseInt64("abc", out));
    EXPECT_FALSE(parseInt64("", out));
    EXPECT_FALSE(parseInt64(nullptr, out));
    EXPECT_FALSE(parseInt64("12x", out));
    EXPECT_FALSE(parseInt64("4.5", out));
    // One past INT64_MAX / INT64_MIN — strtoll saturates here; the
    // checked wrapper must refuse instead (parser.cc:94's old bug).
    EXPECT_FALSE(parseInt64("9223372036854775808", out));
    EXPECT_FALSE(parseInt64("-9223372036854775809", out));
    EXPECT_FALSE(parseInt64("99999999999999999999", out));
    EXPECT_EQ(out, 99); // Failures leave the output untouched.
}

TEST(ParseDoubleTest, ParsesPlainNumbers)
{
    double out = -1.0;
    EXPECT_TRUE(parseDouble("0", out));
    EXPECT_EQ(out, 0.0);
    EXPECT_TRUE(parseDouble("62.5", out));
    EXPECT_EQ(out, 62.5);
    EXPECT_TRUE(parseDouble("-0.25", out));
    EXPECT_EQ(out, -0.25);
    EXPECT_TRUE(parseDouble("1e3", out));
    EXPECT_EQ(out, 1000.0);
    EXPECT_TRUE(parseDouble("  2.5", out)); // strtod leading spaces.
    EXPECT_EQ(out, 2.5);
}

TEST(ParseDoubleTest, RejectsGarbageOverflowAndNonFinite)
{
    double out = 99.0;
    EXPECT_FALSE(parseDouble("abc", out));
    EXPECT_FALSE(parseDouble("", out));
    EXPECT_FALSE(parseDouble(nullptr, out));
    EXPECT_FALSE(parseDouble("1.5x", out));  // Trailing junk.
    EXPECT_FALSE(parseDouble("1 2", out));   // Embedded space.
    EXPECT_FALSE(parseDouble("1e999", out)); // Overflow (ERANGE).
    EXPECT_FALSE(parseDouble("inf", out));   // Non-finite flag values
    EXPECT_FALSE(parseDouble("nan", out));   // make no sense.
    EXPECT_EQ(out, 99.0); // Failures leave the output untouched.
}

} // namespace
} // namespace chehab
