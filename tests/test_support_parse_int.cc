/// \file
/// Tests for the checked CLI integer parser: garbage, trailing junk,
/// overflow and boundary values must be rejected (std::atoi, which this
/// replaced, silently returned 0 for "abc").
#include <gtest/gtest.h>

#include <climits>
#include <string>

#include "support/parse_int.h"

namespace chehab {
namespace {

TEST(ParseIntTest, ParsesPlainIntegers)
{
    int out = -1;
    EXPECT_TRUE(parseInt("0", out));
    EXPECT_EQ(out, 0);
    EXPECT_TRUE(parseInt("42", out));
    EXPECT_EQ(out, 42);
    EXPECT_TRUE(parseInt("-7", out));
    EXPECT_EQ(out, -7);
    EXPECT_TRUE(parseInt("+13", out));
    EXPECT_EQ(out, 13);
    EXPECT_TRUE(parseInt("  8", out)); // strtol-style leading spaces.
    EXPECT_EQ(out, 8);
}

TEST(ParseIntTest, AcceptsIntBoundaries)
{
    int out = 0;
    EXPECT_TRUE(parseInt(std::to_string(INT_MAX).c_str(), out));
    EXPECT_EQ(out, INT_MAX);
    EXPECT_TRUE(parseInt(std::to_string(INT_MIN).c_str(), out));
    EXPECT_EQ(out, INT_MIN);
}

TEST(ParseIntTest, RejectsGarbageWithoutClobberingOutput)
{
    int out = 99;
    EXPECT_FALSE(parseInt("abc", out));
    EXPECT_FALSE(parseInt("", out));
    EXPECT_FALSE(parseInt(nullptr, out));
    EXPECT_FALSE(parseInt("12x", out));   // Trailing junk.
    EXPECT_FALSE(parseInt("1 2", out));   // Embedded space.
    EXPECT_FALSE(parseInt("4.5", out));   // Not an integer.
    EXPECT_FALSE(parseInt("--3", out));
    EXPECT_EQ(out, 99); // Failures leave the output untouched.
}

TEST(ParseIntTest, RejectsOverflow)
{
    int out = 7;
    // One past INT_MAX / INT_MIN, and far past long.
    EXPECT_FALSE(parseInt("2147483648", out));
    EXPECT_FALSE(parseInt("-2147483649", out));
    EXPECT_FALSE(parseInt("99999999999999999999999999", out));
    EXPECT_EQ(out, 7);
}

} // namespace
} // namespace chehab
