/// \file
/// Pattern-matching unit tests: binding consistency, typed pattern
/// variables (?p plain-only, ?c const-only), literal matching and
/// substitution.
#include <gtest/gtest.h>

#include "ir/parser.h"
#include "support/error.h"
#include "trs/pattern.h"

namespace chehab::trs {
namespace {

using ir::parse;

TEST(PatternTest, IsPatternVar)
{
    EXPECT_TRUE(isPatternVar("?a"));
    EXPECT_TRUE(isPatternVar("?p1"));
    EXPECT_FALSE(isPatternVar("a"));
    EXPECT_FALSE(isPatternVar(""));
}

TEST(PatternTest, WildcardBindsSubtree)
{
    Bindings b;
    ASSERT_TRUE(matchPattern(parse("(+ ?a ?b)"), parse("(+ x (* y z))"), b));
    EXPECT_EQ(b.at("?a")->toString(), "x");
    EXPECT_EQ(b.at("?b")->toString(), "(* y z)");
}

TEST(PatternTest, RepeatedVarRequiresEquality)
{
    Bindings b;
    EXPECT_TRUE(matchPattern(parse("(+ ?a ?a)"), parse("(+ x x)"), b));
    Bindings b2;
    EXPECT_FALSE(matchPattern(parse("(+ ?a ?a)"), parse("(+ x y)"), b2));
    Bindings b3;
    EXPECT_TRUE(matchPattern(parse("(+ (* ?a ?b) (* ?a ?c))"),
                             parse("(+ (* k m) (* k n))"), b3));
}

TEST(PatternTest, OperatorMismatchFails)
{
    Bindings b;
    EXPECT_FALSE(matchPattern(parse("(+ ?a ?b)"), parse("(* x y)"), b));
    Bindings b2;
    EXPECT_FALSE(matchPattern(parse("(- ?a)"), parse("(- x y)"), b2));
}

TEST(PatternTest, LiteralConstantsMatchExactly)
{
    Bindings b;
    EXPECT_TRUE(matchPattern(parse("(* ?a 1)"), parse("(* x 1)"), b));
    Bindings b2;
    EXPECT_FALSE(matchPattern(parse("(* ?a 1)"), parse("(* x 2)"), b2));
    Bindings b3;
    EXPECT_FALSE(matchPattern(parse("(* ?a 1)"), parse("(* x y)"), b3));
}

TEST(PatternTest, PlainOnlyVariable)
{
    Bindings b;
    EXPECT_TRUE(matchPattern(parse("(* ?pa ?x)"), parse("(* (pt w) y)"), b));
    Bindings b2;
    EXPECT_TRUE(matchPattern(parse("(* ?pa ?x)"), parse("(* 3 y)"), b2));
    Bindings b3;
    // Ciphertext operand cannot bind a ?p variable.
    EXPECT_FALSE(matchPattern(parse("(* ?pa ?x)"), parse("(* q y)"), b3));
}

TEST(PatternTest, ConstOnlyVariable)
{
    Bindings b;
    EXPECT_TRUE(matchPattern(parse("(+ ?k1 ?k2)"), parse("(+ 3 4)"), b));
    Bindings b2;
    EXPECT_FALSE(matchPattern(parse("(+ ?k1 ?k2)"), parse("(+ (pt w) 4)"),
                              b2));
}

TEST(PatternTest, MatchesVectorShapes)
{
    Bindings b;
    ASSERT_TRUE(matchPattern(parse("(VecAdd ?a ?b)"),
                             parse("(VecAdd (Vec x y) (Vec u v))"), b));
    EXPECT_EQ(b.at("?a")->toString(), "(Vec x y)");
}

TEST(PatternTest, VecArityMustMatch)
{
    Bindings b;
    EXPECT_TRUE(matchPattern(parse("(Vec ?a ?b)"), parse("(Vec x y)"), b));
    Bindings b2;
    EXPECT_FALSE(matchPattern(parse("(Vec ?a ?b)"), parse("(Vec x y z)"),
                              b2));
}

TEST(SubstituteTest, RebuildsTemplate)
{
    Bindings b;
    ASSERT_TRUE(matchPattern(parse("(+ (* ?a ?b) (* ?a ?c))"),
                             parse("(+ (* k m) (* k n))"), b));
    const ir::ExprPtr result = substitute(parse("(* ?a (+ ?b ?c))"), b);
    EXPECT_EQ(result->toString(), "(* k (+ m n))");
}

TEST(SubstituteTest, UnboundVariableThrows)
{
    Bindings empty;
    EXPECT_THROW(substitute(parse("(+ ?a 1)"), empty), CompileError);
}

TEST(SubstituteTest, SharesBoundSubtrees)
{
    Bindings b;
    ASSERT_TRUE(matchPattern(parse("?a"), parse("(* x y)"), b));
    const ir::ExprPtr bound = b.at("?a");
    const ir::ExprPtr result = substitute(parse("(+ ?a ?a)"), b);
    EXPECT_EQ(result->child(0).get(), bound.get());
    EXPECT_EQ(result->child(1).get(), bound.get());
}

} // namespace
} // namespace chehab::trs
