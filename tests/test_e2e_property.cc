/// \file
/// End-to-end property suite: for randomized programs from both dataset
/// generators, the full pipeline — canonicalize, greedy TRS optimize,
/// schedule, execute on SealLite — must reproduce the reference
/// evaluator's outputs exactly (up to the reference output width; rewrites
/// may widen vectors). This is the strongest whole-system invariant in
/// the repo: it crosses the IR, TRS, scheduler, key selection and the
/// homomorphic backend in one assertion.
#include <gtest/gtest.h>

#include "compiler/pipeline.h"
#include "compiler/runtime.h"
#include "dataset/motif_gen.h"
#include "dataset/random_gen.h"
#include "ir/analysis.h"
#include "ir/evaluator.h"
#include "support/error.h"
#include "trs/ruleset.h"

namespace chehab {
namespace {

const trs::Ruleset&
ruleset()
{
    static const trs::Ruleset rs = trs::buildChehabRuleset();
    return rs;
}

compiler::FheRuntime&
runtime()
{
    static compiler::FheRuntime instance([] {
        fhe::SealLiteParams params;
        params.n = 256;
        params.prime_count = 7;
        params.seed = 2024;
        return params;
    }());
    return instance;
}

/// Compile (greedy TRS) + run on SealLite + compare against the
/// reference evaluator with random inputs.
void
checkEndToEnd(const ir::ExprPtr& program, std::uint64_t seed)
{
    const compiler::Compiled compiled =
        compiler::compileGreedy(ruleset(), program, {}, /*max_steps=*/24);
    ASSERT_TRUE(ir::wellTyped(compiled.optimized));
    // Optimization must never increase the model cost.
    EXPECT_LE(compiled.stats.final_cost, compiled.stats.initial_cost);

    Rng rng(seed);
    ir::Env env;
    for (const std::string& name : ir::ciphertextVars(program)) {
        env[name] = static_cast<std::int64_t>(rng.uniformInt(32));
    }
    for (const std::string& name : ir::plaintextVars(program)) {
        env[name] = static_cast<std::int64_t>(rng.uniformInt(32));
    }

    const ir::Value expected = ir::Evaluator().evaluate(program, env);
    compiler::RunResult run;
    try {
        run = runtime().run(compiled.program, env, /*key_budget=*/8);
    } catch (const CompileError&) {
        GTEST_SKIP() << "circuit wider than the toy backend's row";
    }
    if (run.final_noise_budget <= 0) {
        // Deep random circuits can legitimately exceed the toy modulus;
        // noise behaviour itself is covered by test_fhe_sealite.
        GTEST_SKIP() << "noise budget exhausted (toy parameters)";
    }
    const std::size_t meaningful =
        std::min(run.output.size(), expected.slots.size());
    ASSERT_GT(meaningful, 0u);
    for (std::size_t i = 0; i < meaningful; ++i) {
        EXPECT_EQ(run.output[i], expected.slots[i])
            << "slot " << i << " of " << program->toString() << "\n  -> "
            << compiled.optimized->toString();
    }
}

class MotifEndToEnd : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(MotifEndToEnd, CompiledCircuitsMatchReference)
{
    dataset::MotifGenConfig config;
    config.max_terms = 6;
    config.max_width = 4;
    dataset::MotifSynthesizer synth(GetParam(), config);
    for (int i = 0; i < 3; ++i) {
        checkEndToEnd(synth.generate(), GetParam() * 17 + i);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MotifEndToEnd,
                         ::testing::Range<std::uint64_t>(1, 9));

class RandomEndToEnd : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(RandomEndToEnd, CompiledCircuitsMatchReference)
{
    dataset::RandomGenConfig config;
    config.max_depth = 4;
    config.max_width = 4;
    config.num_variables = 5;
    dataset::RandomProgramGenerator gen(GetParam() * 131, config);
    for (int i = 0; i < 3; ++i) {
        checkEndToEnd(gen.generate(), GetParam() * 31 + i);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomEndToEnd,
                         ::testing::Range<std::uint64_t>(1, 9));

} // namespace
} // namespace chehab
