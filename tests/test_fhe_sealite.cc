/// \file
/// SealLite correctness suite: modular arithmetic, NTT round-trips,
/// BigInt, batching encode/decode, encryption round-trips, every
/// homomorphic operation against plaintext semantics, rotation/Galois
/// behaviour, and noise-budget monotonicity (App. H.1).
#include <gtest/gtest.h>

#include "fhe/bigint.h"
#include "fhe/modarith.h"
#include "fhe/ntt.h"
#include "fhe/sealite.h"
#include "support/rng.h"

namespace chehab::fhe {
namespace {

SealLiteParams
testParams()
{
    SealLiteParams params;
    params.n = 256;        // Toy degree: fast tests, 128 slots.
    params.prime_bits = 30;
    params.prime_count = 4;
    params.plain_modulus = 65537;
    params.seed = 99;
    return params;
}

SealLite&
scheme()
{
    static SealLite instance(testParams());
    return instance;
}

std::int64_t
tmod(std::int64_t x)
{
    const std::int64_t t = 65537;
    const std::int64_t r = x % t;
    return r < 0 ? r + t : r;
}

// -- modular arithmetic ------------------------------------------------

TEST(ModArithTest, PowAndInv)
{
    EXPECT_EQ(powMod(2, 10, 1000003), 1024u);
    const std::uint64_t p = 998244353;
    const std::uint64_t inv = invMod(12345, p);
    EXPECT_EQ(mulMod(12345, inv, p), 1u);
}

TEST(ModArithTest, PrimalityKnownValues)
{
    EXPECT_TRUE(isPrime(2));
    EXPECT_TRUE(isPrime(65537));
    EXPECT_TRUE(isPrime(998244353));
    EXPECT_FALSE(isPrime(1));
    EXPECT_FALSE(isPrime(65536));
    EXPECT_FALSE(isPrime(3215031751ULL)); // Strong pseudoprime to 2,3,5,7.
}

TEST(ModArithTest, NttPrimesAreFriendly)
{
    const auto primes = findNttPrimes(30, 3, 512);
    ASSERT_EQ(primes.size(), 3u);
    for (std::uint64_t p : primes) {
        EXPECT_TRUE(isPrime(p));
        EXPECT_EQ((p - 1) % 512, 0u);
    }
    EXPECT_NE(primes[0], primes[1]);
}

TEST(ModArithTest, PrimitiveRootHasExactOrder)
{
    const std::uint64_t p = findNttPrimes(30, 1, 512)[0];
    const std::uint64_t psi = findPrimitiveRoot(512, p);
    EXPECT_EQ(powMod(psi, 256, p), p - 1); // psi^(n) = -1.
    EXPECT_EQ(powMod(psi, 512, p), 1u);
}

// -- NTT -----------------------------------------------------------------

TEST(NttTest, RoundTrip)
{
    const int n = 64;
    const std::uint64_t p = findNttPrimes(30, 1, 2 * n)[0];
    const NttTables tables(n, p);
    Rng rng(5);
    std::vector<std::uint64_t> values(n);
    for (auto& v : values) v = rng.uniformInt(p);
    std::vector<std::uint64_t> copy = values;
    tables.forward(copy.data());
    tables.inverse(copy.data());
    EXPECT_EQ(copy, values);
}

TEST(NttTest, MatchesSchoolbookNegacyclic)
{
    const int n = 32;
    const std::uint64_t p = findNttPrimes(30, 1, 2 * n)[0];
    const NttTables tables(n, p);
    Rng rng(6);
    std::vector<std::uint64_t> a(n), b(n);
    for (auto& v : a) v = rng.uniformInt(p);
    for (auto& v : b) v = rng.uniformInt(p);

    // Schoolbook x^n = -1 product.
    std::vector<std::uint64_t> expected(n, 0);
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            const std::uint64_t prod = mulMod(a[i], b[j], p);
            if (i + j < n) {
                expected[i + j] = addMod(expected[i + j], prod, p);
            } else {
                expected[i + j - n] = subMod(expected[i + j - n], prod, p);
            }
        }
    }

    std::vector<std::uint64_t> fa = a, fb = b;
    tables.forward(fa.data());
    tables.forward(fb.data());
    for (int i = 0; i < n; ++i) fa[i] = mulMod(fa[i], fb[i], p);
    tables.inverse(fa.data());
    EXPECT_EQ(fa, expected);
}

// -- BigInt ----------------------------------------------------------------

TEST(BigIntTest, BasicArithmetic)
{
    const BigInt a(0xFFFFFFFFFFFFFFFFULL);
    const BigInt b = a.add(BigInt(1));
    EXPECT_EQ(b.bitLength(), 65);
    EXPECT_EQ(b.subtract(BigInt(1)).compare(a), 0);
    EXPECT_EQ(a.multiplySmall(2).toString(), "36893488147419103230");
}

TEST(BigIntTest, MultiplyAndDivmod)
{
    const BigInt a(1234567890123456789ULL);
    const BigInt sq = a.multiply(a);
    std::uint64_t rem = 0;
    const BigInt back = sq.divmodSmall(1234567890123456789ULL, rem);
    EXPECT_EQ(rem, 0u);
    EXPECT_EQ(back.compare(a), 0);
}

TEST(BigIntTest, ReduceBySubtraction)
{
    const BigInt m(1000000007ULL);
    const BigInt v = m.multiplySmall(3).add(BigInt(42));
    EXPECT_EQ(v.reduceBySubtraction(m).toString(), "42");
}

// -- batching ----------------------------------------------------------------

TEST(SealLiteTest, EncodeDecodeRoundTrip)
{
    std::vector<std::int64_t> values = {1, 2, 3, 42, 65536, 0, 9999};
    const Plaintext plain = scheme().encode(values);
    const std::vector<std::int64_t> decoded = scheme().decode(plain);
    ASSERT_EQ(decoded.size(), static_cast<std::size_t>(scheme().slots()));
    for (std::size_t i = 0; i < values.size(); ++i) {
        EXPECT_EQ(decoded[i], values[i]) << i;
    }
    for (std::size_t i = values.size(); i < decoded.size(); ++i) {
        EXPECT_EQ(decoded[i], 0) << i;
    }
}

TEST(SealLiteTest, EncryptDecryptRoundTrip)
{
    std::vector<std::int64_t> values = {7, 0, 123, 65535, 1};
    const Ciphertext ct = scheme().encrypt(scheme().encode(values));
    const std::vector<std::int64_t> decrypted = scheme().decrypt(ct);
    for (std::size_t i = 0; i < values.size(); ++i) {
        EXPECT_EQ(decrypted[i], values[i]) << i;
    }
}

TEST(SealLiteTest, HomomorphicAddSubNegate)
{
    const std::vector<std::int64_t> a = {10, 20, 30};
    const std::vector<std::int64_t> b = {1, 2, 65530};
    const Ciphertext ca = scheme().encrypt(scheme().encode(a));
    const Ciphertext cb = scheme().encrypt(scheme().encode(b));

    const auto sum = scheme().decrypt(scheme().add(ca, cb));
    const auto diff = scheme().decrypt(scheme().sub(ca, cb));
    const auto negated = scheme().decrypt(scheme().negate(ca));
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(sum[static_cast<std::size_t>(i)], tmod(a[static_cast<std::size_t>(i)] + b[static_cast<std::size_t>(i)]));
        EXPECT_EQ(diff[static_cast<std::size_t>(i)], tmod(a[static_cast<std::size_t>(i)] - b[static_cast<std::size_t>(i)]));
        EXPECT_EQ(negated[static_cast<std::size_t>(i)], tmod(-a[static_cast<std::size_t>(i)]));
    }
}

TEST(SealLiteTest, PlainOperations)
{
    const std::vector<std::int64_t> a = {5, 6, 7};
    const std::vector<std::int64_t> w = {2, 3, 4};
    const Ciphertext ca = scheme().encrypt(scheme().encode(a));
    const Plaintext pw = scheme().encode(w);

    const auto sum = scheme().decrypt(scheme().addPlain(ca, pw));
    const auto prod = scheme().decrypt(scheme().mulPlain(ca, pw));
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(sum[static_cast<std::size_t>(i)],
                  tmod(a[static_cast<std::size_t>(i)] + w[static_cast<std::size_t>(i)]));
        EXPECT_EQ(prod[static_cast<std::size_t>(i)],
                  tmod(a[static_cast<std::size_t>(i)] * w[static_cast<std::size_t>(i)]));
    }
}

TEST(SealLiteTest, CiphertextMultiplyWithRelin)
{
    const std::vector<std::int64_t> a = {3, 1000, 65536};
    const std::vector<std::int64_t> b = {9, 7, 2};
    const Ciphertext ca = scheme().encrypt(scheme().encode(a));
    const Ciphertext cb = scheme().encrypt(scheme().encode(b));
    const auto prod = scheme().decrypt(scheme().multiply(ca, cb));
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(prod[static_cast<std::size_t>(i)],
                  tmod(a[static_cast<std::size_t>(i)] * b[static_cast<std::size_t>(i)]));
    }
}

TEST(SealLiteTest, MultiplyDepthTwo)
{
    const std::vector<std::int64_t> a = {2, 3};
    const Ciphertext ca = scheme().encrypt(scheme().encode(a));
    const Ciphertext sq = scheme().multiply(ca, ca);
    const Ciphertext quad = scheme().multiply(sq, sq);
    const auto out = scheme().decrypt(quad);
    EXPECT_EQ(out[0], 16);
    EXPECT_EQ(out[1], 81);
}

TEST(SealLiteTest, RotationMatchesPaperConvention)
{
    SealLite& s = scheme();
    s.makeGaloisKeys({1, 2});
    std::vector<std::int64_t> values(static_cast<std::size_t>(s.slots()), 0);
    for (int i = 0; i < s.slots(); ++i) values[static_cast<std::size_t>(i)] = i + 1;
    const Ciphertext ct = s.encrypt(s.encode(values));

    // v << 1: slot i takes the value of slot i+1 (cyclic), §3.1.
    const auto rotated = s.decrypt(s.rotate(ct, 1));
    for (int i = 0; i < s.slots(); ++i) {
        EXPECT_EQ(rotated[static_cast<std::size_t>(i)],
                  values[static_cast<std::size_t>((i + 1) % s.slots())]);
    }
    const auto rotated2 = s.decrypt(s.rotate(ct, 2));
    EXPECT_EQ(rotated2[0], values[2]);
}

TEST(SealLiteTest, NegativeRotationIsRight)
{
    SealLite& s = scheme();
    s.makeGaloisKeys({-1});
    std::vector<std::int64_t> values = {10, 20, 30};
    const Ciphertext ct = s.encrypt(s.encode(values));
    const auto rotated = s.decrypt(s.rotate(ct, -1));
    // Right rotation: slot 1 receives slot 0.
    EXPECT_EQ(rotated[1], 10);
    EXPECT_EQ(rotated[2], 20);
}

TEST(SealLiteTest, GaloisKeyManagement)
{
    SealLite s(testParams());
    EXPECT_TRUE(s.hasGaloisKey(0)); // Identity needs no key.
    EXPECT_FALSE(s.hasGaloisKey(3));
    s.makeGaloisKeys({3, 3, 3});
    EXPECT_TRUE(s.hasGaloisKey(3));
    EXPECT_EQ(s.numGaloisKeys(), 1); // Deduplicated.
}

TEST(SealLiteTest, RotateAndAddComputesDotProductReduction)
{
    // The rotate-reduce ladder the TRS emits (log-depth partial sums).
    SealLite s(testParams());
    s.makeGaloisKeys({1, 2});
    const std::vector<std::int64_t> a = {1, 2, 3, 4};
    const std::vector<std::int64_t> b = {5, 6, 7, 8};
    Ciphertext v = s.multiply(s.encrypt(s.encode(a)),
                              s.encrypt(s.encode(b)));
    v = s.add(v, s.rotate(v, 2));
    v = s.add(v, s.rotate(v, 1));
    // Slot 0 = 1*5 + 2*6 + 3*7 + 4*8 = 70.
    EXPECT_EQ(s.decrypt(v)[0], 70);
}

// -- noise ----------------------------------------------------------------

TEST(SealLiteNoiseTest, FreshBudgetPositiveAndScalesWithQ)
{
    SealLite small(testParams());
    SealLiteParams bigger = testParams();
    bigger.prime_count = 6;
    SealLite big(bigger);
    EXPECT_GT(small.freshNoiseBudget(), 40);
    EXPECT_GT(big.freshNoiseBudget(), small.freshNoiseBudget() + 30);
}

TEST(SealLiteNoiseTest, AdditionConsumesLittle)
{
    SealLite s(testParams());
    const Ciphertext ct = s.encrypt(s.encode({1, 2, 3}));
    const int before = s.noiseBudgetBits(ct);
    const int after = s.noiseBudgetBits(s.add(ct, ct));
    EXPECT_GE(before, after);
    EXPECT_LE(before - after, 3);
}

TEST(SealLiteNoiseTest, MultiplicationConsumesMuchMore)
{
    SealLite s(testParams());
    const Ciphertext ct = s.encrypt(s.encode({5, 7}));
    const int before = s.noiseBudgetBits(ct);
    const int after_mul = s.noiseBudgetBits(s.multiply(ct, ct));
    const int after_add = s.noiseBudgetBits(s.add(ct, ct));
    EXPECT_GT(before - after_mul, 10);
    EXPECT_GT(before - after_mul, 3 * (before - after_add));
}

TEST(SealLiteNoiseTest, RotationConsumesModestBudget)
{
    SealLite s(testParams());
    s.makeGaloisKeys({1});
    const Ciphertext ct = s.encrypt(s.encode({1, 2, 3, 4}));
    const int before = s.noiseBudgetBits(ct);
    const int after = s.noiseBudgetBits(s.rotate(ct, 1));
    EXPECT_GE(before, after);
    // Key switching adds bounded noise, far below a multiplication.
    const int mul_cost =
        before - s.noiseBudgetBits(s.multiply(ct, ct));
    EXPECT_LT(before - after, mul_cost);
}

TEST(SealLiteNoiseTest, DeepCircuitExhaustsBudget)
{
    SealLiteParams params = testParams();
    params.prime_count = 3;
    SealLite s(params);
    Ciphertext ct = s.encrypt(s.encode({2}));
    int budget = s.noiseBudgetBits(ct);
    int depth = 0;
    while (budget > 0 && depth < 12) {
        ct = s.multiply(ct, ct);
        budget = s.noiseBudgetBits(ct);
        ++depth;
    }
    // A small modulus must run out within a few squarings — the paper's
    // "Coyote exhausts the entire noise budget" scenario (§7.5).
    EXPECT_LE(depth, 8);
    EXPECT_LE(budget, 0);
}

} // namespace
} // namespace chehab::fhe
