/// \file
/// Property-based soundness suite: every rule in the CHEHAB rule set,
/// applied at every match location of a corpus of randomly generated
/// programs, must preserve prefix slot semantics under the reference
/// evaluator. This is the key invariant of the whole TRS — an unsound
/// rule would silently corrupt every circuit the RL agent touches.
#include <gtest/gtest.h>

#include "ir/analysis.h"
#include "ir/evaluator.h"
#include "ir/parser.h"
#include "support/rng.h"
#include "trs/ruleset.h"

namespace chehab::trs {
namespace {

using ir::ExprPtr;

/// Small structured random program generator for the property tests
/// (richer generators live in src/dataset).
class ProgramGen
{
  public:
    explicit ProgramGen(std::uint64_t seed) : rng_(seed) {}

    ExprPtr
    scalar(int depth)
    {
        if (depth <= 0 || rng_.chance(0.25)) return leaf();
        switch (rng_.uniformInt(5)) {
          case 0: return ir::add(scalar(depth - 1), scalar(depth - 1));
          case 1: return ir::sub(scalar(depth - 1), scalar(depth - 1));
          case 2: return ir::mul(scalar(depth - 1), scalar(depth - 1));
          case 3: return ir::neg(scalar(depth - 1));
          default: {
            // Shared subexpression: classic factorization fodder.
            const ExprPtr shared = scalar(depth - 1);
            return ir::add(ir::mul(shared, scalar(depth - 1)),
                           ir::mul(shared, scalar(depth - 1)));
          }
        }
    }

    ExprPtr
    program(int depth, int width)
    {
        if (width == 1) return scalar(depth);
        std::vector<ExprPtr> slots;
        for (int i = 0; i < width; ++i) slots.push_back(scalar(depth));
        return ir::vec(std::move(slots));
    }

  private:
    ExprPtr
    leaf()
    {
        const std::uint64_t kind = rng_.uniformInt(8);
        if (kind < 5) {
            return ir::var("x" + std::to_string(rng_.uniformInt(6)));
        }
        if (kind < 6) {
            return ir::plainVar("w" + std::to_string(rng_.uniformInt(3)));
        }
        static const std::int64_t consts[] = {0, 1, 2, 3, 5};
        return ir::constant(consts[rng_.uniformInt(5)]);
    }

    chehab::Rng rng_;
};

struct SoundnessParam
{
    std::uint64_t seed;
    int depth;
    int width;
};

class RuleSoundness : public ::testing::TestWithParam<SoundnessParam>
{};

TEST_P(RuleSoundness, EveryRuleApplicationPreservesSemantics)
{
    const Ruleset& ruleset = buildChehabRuleset();
    const SoundnessParam param = GetParam();
    ProgramGen gen(param.seed);
    const ExprPtr program = gen.program(param.depth, param.width);
    ASSERT_TRUE(ir::wellTyped(program));

    for (std::size_t r = 0; r < ruleset.size(); ++r) {
        const RewriteRule& rule = ruleset[r];
        const std::vector<int> matches = rule.findMatches(program, 8);
        for (std::size_t ordinal = 0; ordinal < matches.size(); ++ordinal) {
            const ExprPtr rewritten =
                rule.applyAt(program, static_cast<int>(ordinal));
            ASSERT_NE(rewritten, nullptr)
                << rule.name() << " reported a match it could not apply";
            EXPECT_TRUE(ir::wellTyped(rewritten))
                << rule.name() << " broke typing on "
                << program->toString();
            EXPECT_TRUE(ir::equivalentOn(program, rewritten, 6,
                                         param.seed * 31 + ordinal))
                << rule.name() << " broke semantics on "
                << program->toString() << "\n  -> "
                << rewritten->toString();
        }
    }
}

std::vector<SoundnessParam>
soundnessParams()
{
    std::vector<SoundnessParam> params;
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        params.push_back({seed, 3 + static_cast<int>(seed % 3), 1});
        params.push_back({seed + 100, 2 + static_cast<int>(seed % 3),
                          2 + static_cast<int>(seed % 4)});
    }
    return params;
}

INSTANTIATE_TEST_SUITE_P(Corpus, RuleSoundness,
                         ::testing::ValuesIn(soundnessParams()));

/// Chained-application property: random rule sequences (the kind of
/// trajectory the RL agent produces) stay sound end to end.
class TrajectorySoundness : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(TrajectorySoundness, RandomTrajectoriesStaySound)
{
    const Ruleset& ruleset = buildChehabRuleset();
    chehab::Rng rng(GetParam());
    ProgramGen gen(GetParam() * 977);
    const ExprPtr original =
        gen.program(3, 1 + static_cast<int>(rng.uniformInt(4)));

    ExprPtr current = original;
    int applied = 0;
    for (int step = 0; step < 25 && applied < 12; ++step) {
        const std::size_t r = rng.pickIndex(ruleset.size());
        const std::vector<int> matches =
            ruleset[r].findMatches(current, 8);
        if (matches.empty()) continue;
        const int ordinal = static_cast<int>(rng.pickIndex(matches.size()));
        const ExprPtr next = ruleset[r].applyAt(current, ordinal);
        ASSERT_NE(next, nullptr);
        current = next;
        ++applied;
        ASSERT_TRUE(ir::wellTyped(current)) << ruleset[r].name();
    }
    EXPECT_TRUE(ir::equivalentOn(original, current, 8, GetParam()))
        << "after " << applied << " rewrites: " << current->toString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrajectorySoundness,
                         ::testing::Range<std::uint64_t>(1, 21));

} // namespace
} // namespace chehab::trs
