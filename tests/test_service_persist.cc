/// \file
/// Failure-mode and warm-restart tests for the persistence tier
/// (service/persist.h). The contract under test, end to end:
///
///   - store/load round-trips reproduce the artifact bit-for-bit
///     (content bytes and disassembly), and the counters account for
///     every lookup exactly;
///   - a truncated file, a flipped byte, a wrong format version or a
///     wrong magic is *skipped and counted* — never a crash, never a
///     wrong artifact, and the service falls back to a cold compile
///     whose outputs are unchanged;
///   - concurrent writers to one cache_dir (the multi-process sharing
///     story, exercised here with threads over two PersistStore
///     instances) never tear an entry;
///   - a second service lifetime over the same cache_dir warm-starts:
///     persist hits instead of compiles, with responses bit-identical
///     to the cold run's, at 1 worker and at 8.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "benchsuite/kernels.h"
#include "compiler/serialize.h"
#include "ir/evaluator.h"
#include "ir/parser.h"
#include "service/compile_service.h"
#include "service/persist.h"
#include "service/service_stats.h"
#include "trs/ruleset.h"

namespace chehab::service {
namespace {

namespace fs = std::filesystem;

/// Fresh directory per test, removed on teardown.
class PersistTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = fs::temp_directory_path() /
               ("chehab_persist_test_" +
                std::string(::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name()));
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    std::string dir() const { return dir_.string(); }

    fs::path dir_;
};

compiler::Compiled
makeArtifact(const std::string& source)
{
    const trs::Ruleset ruleset = trs::buildChehabRuleset();
    return compiler::compileGreedy(ruleset, ir::parse(source));
}

CacheKey
makeKey(std::uint64_t hi, std::uint64_t lo, std::uint64_t pipeline)
{
    CacheKey key;
    key.source.hi = hi;
    key.source.lo = lo;
    key.pipeline = pipeline;
    return key;
}

/// Flip one byte in the middle of \p path (checksum must catch it).
void
flipMiddleByte(const std::string& path)
{
    std::fstream file(path,
                      std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.is_open()) << path;
    file.seekg(0, std::ios::end);
    const auto size = static_cast<std::streamoff>(file.tellg());
    ASSERT_GT(size, 0);
    file.seekg(size / 2);
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5a);
    file.seekp(size / 2);
    file.write(&byte, 1);
}

TEST_F(PersistTest, StoreLoadRoundTripWithExactCounters)
{
    PersistStore store(dir());
    const CacheKey key = makeKey(0x1111, 0x2222, 7);
    const compiler::Compiled artifact = makeArtifact(
        "(+ (* a b) (* c d))");

    // Lookup before any store: a plain miss, nothing corrupt.
    EXPECT_FALSE(store.loadArtifact(key).has_value());
    EXPECT_EQ(store.stats().misses, 1u);
    EXPECT_EQ(store.stats().corrupt, 0u);

    ASSERT_TRUE(store.storeArtifact(key, artifact));
    EXPECT_EQ(store.stats().writes, 1u);
    ASSERT_TRUE(fs::exists(store.artifactPath(key)));

    const auto loaded = store.loadArtifact(key);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(compiler::serializeCompiledContent(*loaded),
              compiler::serializeCompiledContent(artifact));
    EXPECT_EQ(loaded->program.disassemble(),
              artifact.program.disassemble());
    const PersistStats stats = store.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.corrupt, 0u);
    EXPECT_EQ(stats.writes, 1u);

    // A different key misses without touching the stored entry.
    EXPECT_FALSE(store.loadArtifact(makeKey(9, 9, 9)).has_value());
    EXPECT_EQ(store.stats().misses, 2u);

    // No temp-file litter from the atomic write protocol.
    for (const auto& entry :
         fs::directory_iterator(fs::path(dir()) / "artifacts")) {
        EXPECT_EQ(entry.path().extension(), ".art")
            << entry.path().string();
    }
}

TEST_F(PersistTest, TruncatedFileIsSkippedAndCounted)
{
    PersistStore store(dir());
    const CacheKey key = makeKey(1, 2, 3);
    ASSERT_TRUE(store.storeArtifact(key, makeArtifact("(* a b)")));
    const std::string path = store.artifactPath(key);
    for (const std::uintmax_t keep :
         {std::uintmax_t{3}, fs::file_size(path) / 2,
          fs::file_size(path) - 1}) {
        fs::resize_file(path, keep);
        PersistStore reader(dir());
        EXPECT_FALSE(reader.loadArtifact(key).has_value());
        EXPECT_EQ(reader.stats().corrupt, 1u);
        EXPECT_EQ(reader.stats().misses, 1u); // Corrupt ⊆ misses.
        EXPECT_EQ(reader.stats().hits, 0u);
    }
}

TEST_F(PersistTest, FlippedByteFailsTheChecksum)
{
    PersistStore store(dir());
    const CacheKey key = makeKey(4, 5, 6);
    ASSERT_TRUE(store.storeArtifact(key, makeArtifact("(+ a b)")));
    flipMiddleByte(store.artifactPath(key));
    EXPECT_FALSE(store.loadArtifact(key).has_value());
    EXPECT_EQ(store.stats().corrupt, 1u);
    EXPECT_EQ(store.stats().misses, 1u);
    // Re-storing repairs the entry in place.
    ASSERT_TRUE(store.storeArtifact(key, makeArtifact("(+ a b)")));
    EXPECT_TRUE(store.loadArtifact(key).has_value());
}

TEST_F(PersistTest, WrongVersionOrMagicIsRefused)
{
    PersistStore store(dir());
    const CacheKey key = makeKey(7, 8, 9);
    ASSERT_TRUE(store.storeArtifact(key, makeArtifact("(- a b)")));
    const std::string path = store.artifactPath(key);

    // Bump the version field (bytes 4..7, little-endian u32).
    {
        std::fstream file(
            path, std::ios::in | std::ios::out | std::ios::binary);
        file.seekp(4);
        const char version = PersistStore::kFormatVersion + 1;
        file.write(&version, 1);
    }
    EXPECT_FALSE(store.loadArtifact(key).has_value());
    EXPECT_EQ(store.stats().corrupt, 1u);

    // Corrupt the magic (byte 0): same refusal, no crash.
    {
        std::fstream file(
            path, std::ios::in | std::ios::out | std::ios::binary);
        const char junk = 'X';
        file.write(&junk, 1);
    }
    EXPECT_FALSE(store.loadArtifact(key).has_value());
    EXPECT_EQ(store.stats().corrupt, 2u);
}

TEST_F(PersistTest, ConcurrentWritersToOneDirectoryNeverTear)
{
    // Two stores over one directory stand in for two processes; all
    // threads hammer the same small key set while readers poll. Every
    // successful read must decode to the one true artifact per key —
    // the atomic-rename protocol forbids observing a torn file.
    PersistStore a(dir(), /*shard_id=*/0);
    PersistStore b(dir(), /*shard_id=*/1);
    const std::vector<std::string> sources = {
        "(+ (* a b) (* c d))", "(* (+ a b) (+ c d))", "(- (* a a) b)"};
    std::vector<CacheKey> keys;
    std::vector<compiler::Compiled> artifacts;
    std::vector<std::string> expected_content;
    for (std::size_t i = 0; i < sources.size(); ++i) {
        keys.push_back(makeKey(0xabc, i, 1));
        artifacts.push_back(makeArtifact(sources[i]));
        expected_content.push_back(
            compiler::serializeCompiledContent(artifacts[i]));
    }

    std::atomic<int> bad_reads{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&, t] {
            PersistStore& mine = (t % 2 == 0) ? a : b;
            for (int round = 0; round < 25; ++round) {
                const std::size_t i =
                    static_cast<std::size_t>((t + round) %
                                             static_cast<int>(keys.size()));
                mine.storeArtifact(keys[i], artifacts[i]);
                const auto loaded = mine.loadArtifact(keys[i]);
                if (loaded &&
                    compiler::serializeCompiledContent(*loaded) !=
                        expected_content[i]) {
                    ++bad_reads;
                }
            }
        });
    }
    for (std::thread& thread : threads) thread.join();
    EXPECT_EQ(bad_reads.load(), 0);
    // Nothing was ever counted corrupt, and every key reads back.
    EXPECT_EQ(a.stats().corrupt + b.stats().corrupt, 0u);
    for (std::size_t i = 0; i < keys.size(); ++i) {
        ASSERT_TRUE(a.loadArtifact(keys[i]).has_value());
    }
}

TEST_F(PersistTest, LoadModelSnapshotRoundTripsAsBootPriors)
{
    LoadModel model;
    const CacheKey compile_key = makeKey(0xfeed, 0xbeef, 2);
    BatchGroupKey group;
    group.compile = compile_key;
    group.params_hash = 77;
    group.key_budget = 4;
    model.observeCompile(compile_key, 120.0, 0.040);
    model.observeCompile(compile_key, 120.0, 0.050);
    model.observeRun(group, 60.0, 0.010, 0.002);

    PersistStore store(dir(), /*shard_id=*/3);
    ASSERT_TRUE(store.storeLoadModel(model));
    ASSERT_TRUE(fs::exists(store.loadModelPath()));

    LoadModel warm;
    PersistStore reloader(dir(), /*shard_id=*/3);
    ASSERT_TRUE(reloader.loadLoadModelInto(warm));
    const LoadModelState before = model.exportState();
    const LoadModelState after = warm.exportState();
    ASSERT_EQ(after.compile.size(), before.compile.size());
    ASSERT_EQ(after.run.size(), before.run.size());
    EXPECT_DOUBLE_EQ(after.compile[0].second.seconds_ewma,
                     before.compile[0].second.seconds_ewma);
    EXPECT_EQ(after.compile[0].second.samples,
              before.compile[0].second.samples);
    EXPECT_DOUBLE_EQ(after.run[0].second.setup_ewma,
                     before.run[0].second.setup_ewma);
    EXPECT_DOUBLE_EQ(after.compile_ratio, before.compile_ratio);
    EXPECT_EQ(after.compile_ratio_samples, before.compile_ratio_samples);
    // The prior actually informs predictions: a warm model predicts
    // the observed scale, not the cold seed.
    EXPECT_NEAR(warm.predictCompileSeconds(compile_key, 120.0),
                model.predictCompileSeconds(compile_key, 120.0), 1e-12);

    // Another shard id looks for a different file: first-boot state,
    // no corrupt counted (absence is normal, unlike artifacts).
    LoadModel other;
    PersistStore other_shard(dir(), /*shard_id=*/4);
    EXPECT_FALSE(other_shard.loadLoadModelInto(other));
    EXPECT_EQ(other_shard.stats().corrupt, 0u);

    // A corrupt snapshot is refused and counted, model untouched.
    flipMiddleByte(store.loadModelPath());
    LoadModel poisoned;
    PersistStore corrupt_reader(dir(), /*shard_id=*/3);
    EXPECT_FALSE(corrupt_reader.loadLoadModelInto(poisoned));
    EXPECT_EQ(corrupt_reader.stats().corrupt, 1u);
    EXPECT_TRUE(poisoned.exportState().compile.empty());
}

TEST_F(PersistTest, UnusableCacheDirThrowsInvalidArgument)
{
    // A regular file where the directory should be: the store
    // constructor throws, and ServiceConfig wraps it for the service.
    const std::string blocker = dir() + "/blocker";
    std::ofstream(blocker) << "not a directory";
    EXPECT_THROW(PersistStore store(blocker), std::runtime_error);

    ServiceConfig config;
    config.num_workers = 1;
    config.cache_dir = blocker;
    EXPECT_THROW(CompileService service(config), std::invalid_argument);
}

// ---- service-level warm restart -------------------------------------

std::vector<RunRequest>
suiteRequests(int distinct, int repeats)
{
    std::vector<RunRequest> requests;
    std::vector<benchsuite::Kernel> kernels = {
        benchsuite::dotProduct(4), benchsuite::l2Distance(4),
        benchsuite::polyReg(4), benchsuite::hammingDistance(4)};
    kernels.resize(static_cast<std::size_t>(distinct));
    for (int r = 0; r < repeats; ++r) {
        for (std::size_t k = 0; k < kernels.size(); ++k) {
            RunRequest request;
            request.name = kernels[k].name + "#" + std::to_string(r);
            request.source = kernels[k].program;
            request.pipeline = compiler::DriverConfig::greedy({}, 12);
            request.params.n = 128;
            request.params.prime_count = 4;
            request.params.seed = 17;
            request.inputs =
                benchsuite::syntheticInputs(kernels[k].program);
            for (auto& [name, value] : request.inputs) {
                value += (static_cast<int>(k) + r) % 5;
            }
            requests.push_back(std::move(request));
        }
    }
    return requests;
}

bool
outputMatchesReference(const RunRequest& reference,
                       const RunResponse& response)
{
    const auto norm = [](std::int64_t v, std::int64_t t) {
        return ((v % t) + t) % t;
    };
    const auto t =
        static_cast<std::int64_t>(reference.params.plain_modulus);
    const ir::Value expected =
        ir::Evaluator().evaluate(reference.source, reference.inputs);
    const std::vector<std::int64_t>& got = response.result.output;
    if (got.empty()) return false;
    if (expected.is_vector) {
        if (got.size() != expected.slots.size()) return false;
        for (std::size_t s = 0; s < got.size(); ++s) {
            if (norm(got[s], t) != norm(expected.slots[s], t)) {
                return false;
            }
        }
        return true;
    }
    return norm(got[0], t) == norm(expected.slots[0], t);
}

struct LifetimeResult
{
    std::vector<RunResponse> responses;
    ServiceStats stats;
};

LifetimeResult
runLifetime(const std::string& cache_dir, int workers, int distinct,
            int repeats)
{
    ServiceConfig config;
    config.num_workers = workers;
    config.cache_dir = cache_dir;
    config.max_lanes = 1;
    CompileService service(config);
    LifetimeResult result;
    std::vector<RunRequest> requests = suiteRequests(distinct, repeats);
    const std::vector<RunRequest> reference = requests;
    result.responses = service.runBatch(std::move(requests));
    service.drain();
    result.stats = service.stats();
    // Every response checked against the plaintext evaluator, and the
    // quiescent stats invariants must hold with persistence active.
    for (std::size_t i = 0; i < result.responses.size(); ++i) {
        EXPECT_TRUE(result.responses[i].ok)
            << result.responses[i].error;
        EXPECT_TRUE(outputMatchesReference(reference[i],
                                           result.responses[i]))
            << result.responses[i].name;
    }
    EXPECT_EQ(checkStatsInvariants(result.stats, /*quiescent=*/true),
              std::string());
    return result;
}

void
expectBitIdentical(const LifetimeResult& cold,
                   const LifetimeResult& warm)
{
    ASSERT_EQ(cold.responses.size(), warm.responses.size());
    for (std::size_t i = 0; i < cold.responses.size(); ++i) {
        EXPECT_EQ(cold.responses[i].name, warm.responses[i].name);
        EXPECT_EQ(cold.responses[i].result.output,
                  warm.responses[i].result.output)
            << cold.responses[i].name;
        EXPECT_EQ(cold.responses[i].compiled.program.disassemble(),
                  warm.responses[i].compiled.program.disassemble())
            << cold.responses[i].name;
        EXPECT_EQ(compiler::serializeCompiledContent(
                      cold.responses[i].compiled),
                  compiler::serializeCompiledContent(
                      warm.responses[i].compiled))
            << cold.responses[i].name;
    }
}

class PersistServiceTest : public PersistTest,
                           public ::testing::WithParamInterface<int>
{};

TEST_P(PersistServiceTest, WarmRestartIsBitIdenticalToColdRun)
{
    const int workers = GetParam();
    const int distinct = 4;
    const int repeats = 3;

    const LifetimeResult cold =
        runLifetime(dir(), workers, distinct, repeats);
    EXPECT_EQ(cold.stats.persist.hits, 0u);
    EXPECT_EQ(cold.stats.compiled,
              static_cast<std::uint64_t>(distinct));
    EXPECT_GE(cold.stats.persist.writes,
              static_cast<std::uint64_t>(distinct));

    const LifetimeResult warm =
        runLifetime(dir(), workers, distinct, repeats);
    EXPECT_EQ(warm.stats.compiled, 0u); // Every miss loaded from disk.
    EXPECT_EQ(warm.stats.persist.hits,
              static_cast<std::uint64_t>(distinct));
    EXPECT_EQ(warm.stats.persist.corrupt, 0u);

    expectBitIdentical(cold, warm);
}

INSTANTIATE_TEST_SUITE_P(Workers, PersistServiceTest,
                         ::testing::Values(1, 8));

TEST_F(PersistTest, CorruptedStoreFallsBackToColdCompiles)
{
    const LifetimeResult cold = runLifetime(dir(), 2, 3, 2);
    ASSERT_GT(cold.stats.persist.writes, 0u);

    // Flip a byte in *every* stored artifact.
    int corrupted = 0;
    for (const auto& entry :
         fs::directory_iterator(fs::path(dir()) / "artifacts")) {
        flipMiddleByte(entry.path().string());
        ++corrupted;
    }
    ASSERT_GT(corrupted, 0);

    // The next lifetime must cold-start: no hits, every corrupt entry
    // counted, every output still correct (runLifetime checks the
    // evaluator and the invariants internally).
    const LifetimeResult fallback = runLifetime(dir(), 2, 3, 2);
    EXPECT_EQ(fallback.stats.persist.hits, 0u);
    EXPECT_EQ(fallback.stats.persist.corrupt,
              static_cast<std::uint64_t>(corrupted));
    EXPECT_EQ(fallback.stats.compiled, 3u);
    expectBitIdentical(cold, fallback);
}

} // namespace
} // namespace chehab::service
