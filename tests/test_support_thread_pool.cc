/// \file
/// Unit tests for the priority worker pool: completion, wait()
/// semantics, cost-priority ordering and FIFO tiebreak.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <vector>

#include "support/thread_pool.h"

namespace chehab {
namespace {

TEST(ThreadPoolTest, RunsAllTasks)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i) {
        pool.submit([&count](int) { ++count; });
    }
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ClampsToOneWorker)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1);
}

TEST(ThreadPoolTest, WorkerIndexInRange)
{
    ThreadPool pool(3);
    std::atomic<bool> in_range{true};
    for (int i = 0; i < 50; ++i) {
        pool.submit([&in_range](int worker) {
            if (worker < 0 || worker >= 3) in_range = false;
        });
    }
    pool.wait();
    EXPECT_TRUE(in_range.load());
}

TEST(ThreadPoolTest, HigherPriorityRunsFirst)
{
    ThreadPool pool(1);
    std::mutex gate_mutex;
    std::condition_variable gate_cv;
    bool gate_open = false;

    // Occupy the single worker so the remaining submissions queue up.
    pool.submit([&](int) {
        std::unique_lock<std::mutex> lock(gate_mutex);
        gate_cv.wait(lock, [&] { return gate_open; });
    });

    std::mutex order_mutex;
    std::vector<int> order;
    auto record = [&](int tag) {
        std::unique_lock<std::mutex> lock(order_mutex);
        order.push_back(tag);
    };
    pool.submit([&, record](int) { record(1); }, /*priority=*/1.0);
    pool.submit([&, record](int) { record(3); }, /*priority=*/3.0);
    pool.submit([&, record](int) { record(2); }, /*priority=*/2.0);

    {
        std::unique_lock<std::mutex> lock(gate_mutex);
        gate_open = true;
    }
    gate_cv.notify_all();
    pool.wait();
    EXPECT_EQ(order, (std::vector<int>{3, 2, 1}));
}

TEST(ThreadPoolTest, EqualPriorityIsFifo)
{
    ThreadPool pool(1);
    std::mutex gate_mutex;
    std::condition_variable gate_cv;
    bool gate_open = false;
    pool.submit([&](int) {
        std::unique_lock<std::mutex> lock(gate_mutex);
        gate_cv.wait(lock, [&] { return gate_open; });
    });

    std::mutex order_mutex;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i) {
        pool.submit([&, i](int) {
            std::unique_lock<std::mutex> lock(order_mutex);
            order.push_back(i);
        });
    }
    {
        std::unique_lock<std::mutex> lock(gate_mutex);
        gate_open = true;
    }
    gate_cv.notify_all();
    pool.wait();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(ThreadPoolTest, DestructorDrainsQueue)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 20; ++i) {
            pool.submit([&count](int) { ++count; });
        }
    } // ~ThreadPool must finish queued work before joining.
    EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPoolTest, TasksMaySubmitTasks)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&](int) {
        for (int i = 0; i < 10; ++i) {
            pool.submit([&count](int) { ++count; });
        }
    });
    pool.wait();
    EXPECT_EQ(count.load(), 10);
}

} // namespace
} // namespace chehab
