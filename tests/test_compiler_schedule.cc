/// \file
/// Scheduler tests: CSE, pack replication, rotation lowering (single
/// rotation for power-of-two widths, rotate+mask emulation otherwise),
/// computed-pack materialization, and plaintext operand classification.
#include <gtest/gtest.h>

#include "compiler/schedule.h"
#include "ir/parser.h"
#include "support/error.h"

namespace chehab::compiler {
namespace {

using ir::parse;

TEST(ScheduleTest, SingleVariable)
{
    const FheProgram program = schedule(parse("x"));
    ASSERT_EQ(program.instrs.size(), 1u);
    EXPECT_EQ(program.instrs[0].op, FheOpcode::PackCipher);
    EXPECT_EQ(program.output_width, 1);
}

TEST(ScheduleTest, LeafPackIsSingleLoad)
{
    const FheProgram program = schedule(parse("(Vec a b c d)"));
    ASSERT_EQ(program.instrs.size(), 1u);
    EXPECT_EQ(program.instrs[0].slots.size(), 4u);
    EXPECT_TRUE(program.instrs[0].replicate); // Power-of-two width.
    EXPECT_EQ(program.output_width, 4);
}

TEST(ScheduleTest, NonPow2PackNotReplicated)
{
    const FheProgram program = schedule(parse("(Vec a b c)"));
    EXPECT_FALSE(program.instrs[0].replicate);
}

TEST(ScheduleTest, CseSharesSubcircuits)
{
    // (* v3 v4) appears twice: one Mul instruction only.
    const FheProgram program =
        schedule(parse("(+ (* (* v1 v2) (* v3 v4)) (* (* v3 v4) v5))"));
    EXPECT_EQ(program.counts().ct_ct_mul, 4);
}

TEST(ScheduleTest, VectorOpsLowerDirectly)
{
    const FheProgram program =
        schedule(parse("(VecAdd (VecMul (Vec a b) (Vec c d)) (Vec e f))"));
    const FheProgram::Counts counts = program.counts();
    EXPECT_EQ(counts.ct_ct_mul, 1);
    EXPECT_EQ(counts.ct_add, 1);
    EXPECT_EQ(counts.rotations, 0);
}

TEST(ScheduleTest, PlainOperandsUsePlainOps)
{
    const FheProgram program = schedule(parse("(* (pt w) x)"));
    const FheProgram::Counts counts = program.counts();
    EXPECT_EQ(counts.ct_pt_mul, 1);
    EXPECT_EQ(counts.ct_ct_mul, 0);
}

TEST(ScheduleTest, SubWithPlainRhsBecomesAddPlain)
{
    const FheProgram program = schedule(parse("(- x 3)"));
    bool has_add_plain = false;
    for (const FheInstr& instr : program.instrs) {
        if (instr.op == FheOpcode::AddPlain) has_add_plain = true;
        EXPECT_NE(instr.op, FheOpcode::Sub);
    }
    EXPECT_TRUE(has_add_plain);
}

TEST(ScheduleTest, Pow2RotationIsSingleInstruction)
{
    const FheProgram program = schedule(parse("(<< (Vec a b c d) 1)"));
    EXPECT_EQ(program.counts().rotations, 1);
    EXPECT_EQ(program.counts().ct_pt_mul, 0);
}

TEST(ScheduleTest, NonPow2RotationLowersToRotateMaskAdd)
{
    const FheProgram program = schedule(parse("(<< (Vec a b c) 1)"));
    const FheProgram::Counts counts = program.counts();
    EXPECT_EQ(counts.rotations, 2);
    EXPECT_EQ(counts.ct_pt_mul, 2);
    EXPECT_GE(counts.ct_add, 1);
}

TEST(ScheduleTest, ComputedPackEmitsMaskRotateAdd)
{
    // One computed slot: the §2 "rotations and maskings we omit" cost.
    const FheProgram program =
        schedule(parse("(Vec a (+ x y) b c)"));
    const FheProgram::Counts counts = program.counts();
    EXPECT_GE(counts.rotations, 1);
    EXPECT_GE(counts.ct_pt_mul, 1);
    EXPECT_GE(counts.ct_add, 2); // The (+ x y) itself plus the merge.
}

TEST(ScheduleTest, RotationStepsCollected)
{
    const FheProgram program = schedule(
        parse("(VecAdd (<< (Vec a b c d) 1) (<< (Vec e f g h) 3))"));
    EXPECT_EQ(program.rotationSteps(), (std::vector<int>{1, 3}));
}

TEST(ScheduleTest, RejectsIllTypedInput)
{
    EXPECT_THROW(schedule(parse("(VecAdd (Vec a b) (Vec c d e))")),
                 CompileError);
}

TEST(ScheduleTest, ReduceLadderShape)
{
    // The optimizer's dot-product output: 1 mul, log2(4)=2 rotations.
    const ir::ExprPtr circuit = parse(
        "(VecAdd (VecAdd (VecMul (Vec a0 a1 a2 a3) (Vec b0 b1 b2 b3))"
        "                (<< (VecMul (Vec a0 a1 a2 a3) (Vec b0 b1 b2 b3)) 2))"
        "        (<< (VecAdd (VecMul (Vec a0 a1 a2 a3) (Vec b0 b1 b2 b3))"
        "                (<< (VecMul (Vec a0 a1 a2 a3) (Vec b0 b1 b2 b3)) 2)) 1))");
    const FheProgram program = schedule(circuit);
    const FheProgram::Counts counts = program.counts();
    EXPECT_EQ(counts.ct_ct_mul, 1); // CSE collapses the repeats.
    EXPECT_EQ(counts.rotations, 2);
    EXPECT_EQ(counts.ct_add, 2);
}

} // namespace
} // namespace chehab::compiler
