/// \file
/// Tests for the two-level service sharding layer: the consistent-hash
/// ring (determinism, distribution, growth stability), load-based run
/// routing with the hot-shard steal, cross-shard stats merging
/// (ServiceStats::merge, LatencyHistogram round-trips, invariants on
/// merged snapshots under concurrent load), the ServiceConfig
/// validator, the 1-shard bit-identity contract against a plain
/// CompileService, and the merged multi-shard Chrome trace export.
#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "benchsuite/kernels.h"
#include "ir/evaluator.h"
#include "ir/parser.h"
#include "service/service_stats.h"
#include "service/shard_router.h"
#include "support/telemetry.h"

namespace chehab::service {
namespace {

/// Synthetic cache keys with full control over the hash input: the
/// router only ever sees the key through CacheKeyHash, so fabricated
/// fingerprints exercise it exactly like canonicalized programs do.
CacheKey
syntheticKey(std::uint64_t i)
{
    CacheKey key;
    key.source.hi = i * 0x9e3779b97f4a7c15ULL + 1;
    key.source.lo = i ^ 0x243f6a8885a308d3ULL;
    key.pipeline = 7;
    return key;
}

// ---- the ring ---------------------------------------------------------

TEST(ShardRouterTest, AffinityIsDeterministic)
{
    ShardRouter a(4);
    ShardRouter b(4);
    for (std::uint64_t i = 0; i < 500; ++i) {
        const CacheKey key = syntheticKey(i);
        const int shard = a.affinityShard(key);
        EXPECT_EQ(shard, b.affinityShard(key)) << i;
        EXPECT_EQ(shard, a.affinityShard(key)) << i; // Stable per router.
        EXPECT_GE(shard, 0);
        EXPECT_LT(shard, 4);
    }
}

TEST(ShardRouterTest, RingSpreadsKeysRoughlyUniformly)
{
    const int shards = 4;
    const int keys = 20000;
    ShardRouter router(shards);
    std::vector<int> counts(shards, 0);
    for (std::uint64_t i = 0; i < keys; ++i) {
        ++counts[static_cast<std::size_t>(
            router.affinityShard(syntheticKey(i)))];
    }
    // 64 vnodes/shard keeps each shard's share near 1/N; the bound
    // here is deliberately loose (half to double the fair share) so
    // the test pins "no shard starves or hogs", not the exact variance.
    const int fair = keys / shards;
    for (int shard = 0; shard < shards; ++shard) {
        EXPECT_GT(counts[static_cast<std::size_t>(shard)], fair / 2)
            << shard;
        EXPECT_LT(counts[static_cast<std::size_t>(shard)], fair * 2)
            << shard;
    }
}

TEST(ShardRouterTest, GrowthOnlyMovesKeysToTheNewShard)
{
    const int keys = 5000;
    ShardRouter before(4);
    ShardRouter after(5);
    int moved = 0;
    for (std::uint64_t i = 0; i < keys; ++i) {
        const CacheKey key = syntheticKey(i);
        const int old_shard = before.affinityShard(key);
        const int new_shard = after.affinityShard(key);
        if (new_shard != old_shard) {
            // The consistent-hash contract: adding shard 4 only claims
            // the arcs its own vnodes capture — a key either stays put
            // or moves to the *new* shard, never between old shards.
            EXPECT_EQ(new_shard, 4) << "key " << i << " moved "
                                    << old_shard << " -> " << new_shard;
            ++moved;
        }
    }
    // Roughly 1/5 of the keys should land on the newcomer.
    EXPECT_GT(moved, keys / 10);
    EXPECT_LT(moved, keys / 2);
}

TEST(ShardRouterTest, SingleShardRoutesEverythingToZero)
{
    ShardRouter router(1);
    for (std::uint64_t i = 0; i < 50; ++i) {
        EXPECT_EQ(router.affinityShard(syntheticKey(i)), 0);
        EXPECT_EQ(router.routeRun(syntheticKey(i), {1000.0}), 0);
    }
}

TEST(ShardRouterTest, ConstructorRejectsNonsense)
{
    EXPECT_THROW(ShardRouter(0), std::invalid_argument);
    EXPECT_THROW(ShardRouter(-3), std::invalid_argument);
    RouterConfig no_vnodes;
    no_vnodes.vnodes = 0;
    EXPECT_THROW(ShardRouter(2, no_vnodes), std::invalid_argument);
}

// ---- load-based run routing -------------------------------------------

TEST(ShardRouterTest, RunStaysOnAffinityShardWhenLoadsAreEven)
{
    ShardRouter router(4);
    const CacheKey key = syntheticKey(42);
    const int affinity = router.affinityShard(key);
    // Even loads, loads within the slack, and an affinity shard that
    // is busy but not hot relative to the idlest: all keep affinity.
    EXPECT_EQ(router.routeRun(key, {1.0, 1.0, 1.0, 1.0}), affinity);
    EXPECT_EQ(router.routeRun(key, {0.0, 0.0, 0.0, 0.0}), affinity);
    std::vector<double> mild(4, 1.0);
    mild[static_cast<std::size_t>(affinity)] = 1.5; // < 2x + slack.
    EXPECT_EQ(router.routeRun(key, mild), affinity);
    const RouterStats stats = router.stats();
    EXPECT_EQ(stats.run_affinity, 3u);
    EXPECT_EQ(stats.run_rerouted, 0u);
}

TEST(ShardRouterTest, HotAffinityShardSpillsToCoolest)
{
    ShardRouter router(4);
    const CacheKey key = syntheticKey(42);
    const int affinity = router.affinityShard(key);
    std::vector<double> loads(4, 1.0);
    loads[static_cast<std::size_t>(affinity)] = 10.0; // Hot.
    const int coolest = (affinity + 1) % 4;
    loads[static_cast<std::size_t>(coolest)] = 0.25;
    EXPECT_EQ(router.routeRun(key, loads), coolest);
    const RouterStats stats = router.stats();
    EXPECT_EQ(stats.run_affinity, 0u);
    EXPECT_EQ(stats.run_rerouted, 1u);
}

TEST(ShardRouterTest, SlackSuppressesStealOnNearIdleFleet)
{
    ShardRouter router(4);
    const CacheKey key = syntheticKey(42);
    const int affinity = router.affinityShard(key);
    // Relative imbalance is huge (4 ms vs 1 ms) but absolute load sits
    // inside hot_slack_seconds: affinity wins — stealing here would
    // trade a warm cache for microseconds of queue relief.
    std::vector<double> loads(4, 0.001);
    loads[static_cast<std::size_t>(affinity)] = 0.004;
    EXPECT_EQ(router.routeRun(key, loads), affinity);
}

TEST(ShardRouterTest, MalformedLoadVectorFallsBackToAffinity)
{
    ShardRouter router(4);
    const CacheKey key = syntheticKey(7);
    const int affinity = router.affinityShard(key);
    EXPECT_EQ(router.routeRun(key, {}), affinity);
    EXPECT_EQ(router.routeRun(key, {1.0, 2.0}), affinity);
}

// ---- stats merging ----------------------------------------------------

TEST(ShardRouterTest, LatencyHistogramMergeRoundTrips)
{
    telemetry::LatencyHistogram a;
    telemetry::LatencyHistogram b;
    telemetry::LatencyHistogram combined;
    for (int i = 1; i <= 200; ++i) {
        const double sample = 1e-6 * i * i;
        (i % 3 == 0 ? a : b).record(sample);
        combined.record(sample);
    }
    telemetry::LatencyHistogram merged = a;
    merged.merge(b);
    EXPECT_EQ(merged.count(), combined.count());
    EXPECT_DOUBLE_EQ(merged.sum(), combined.sum());
    EXPECT_DOUBLE_EQ(merged.min(), combined.min());
    EXPECT_DOUBLE_EQ(merged.max(), combined.max());
    EXPECT_EQ(merged.buckets(), combined.buckets());
    for (double p : {0.0, 25.0, 50.0, 90.0, 99.0, 100.0}) {
        EXPECT_DOUBLE_EQ(merged.percentile(p), combined.percentile(p))
            << p;
    }
}

TEST(ShardRouterTest, ServiceStatsMergeSumsEveryLayer)
{
    ServiceStats a;
    a.submitted = 3;
    a.compiled = 2;
    a.run_submitted = 5;
    a.executed = 4;
    a.total_compile_seconds = 1.5;
    a.packed_lanes = 6;
    a.cache.hits = 2;
    a.cache.misses = 1;
    a.run_cache.hits = 7;
    a.load_model.warm_predictions = 9;
    a.load_model.inflight_jobs = 1;
    a.load_model.inflight_predicted_seconds = 0.5;
    a.pool.tasks_run = 11;
    a.pool.busy_seconds = 2.0;
    a.telemetry.enabled = true;
    a.telemetry.events = 13;
    a.telemetry.hist[0].record(0.001);

    ServiceStats b;
    b.submitted = 10;
    b.compiled = 9;
    b.run_submitted = 20;
    b.executed = 18;
    b.total_compile_seconds = 0.5;
    b.packed_lanes = 1;
    b.cache.hits = 4;
    b.cache.misses = 2;
    b.run_cache.hits = 3;
    b.load_model.warm_predictions = 1;
    b.load_model.inflight_jobs = 2;
    b.load_model.inflight_predicted_seconds = 1.25;
    b.pool.tasks_run = 5;
    b.pool.busy_seconds = 1.0;
    b.telemetry.events = 2;
    b.telemetry.hist[0].record(0.002);
    b.telemetry.hist[0].record(0.004);

    ServiceStats merged = a;
    merged.merge(b);
    EXPECT_EQ(merged.submitted, 13u);
    EXPECT_EQ(merged.compiled, 11u);
    EXPECT_EQ(merged.run_submitted, 25u);
    EXPECT_EQ(merged.executed, 22u);
    EXPECT_DOUBLE_EQ(merged.total_compile_seconds, 2.0);
    EXPECT_EQ(merged.packed_lanes, 7u);
    EXPECT_EQ(merged.cache.hits, 6u);
    EXPECT_EQ(merged.cache.misses, 3u);
    EXPECT_EQ(merged.run_cache.hits, 10u);
    EXPECT_EQ(merged.load_model.warm_predictions, 10u);
    EXPECT_EQ(merged.load_model.inflight_jobs, 3u);
    EXPECT_DOUBLE_EQ(merged.load_model.inflight_predicted_seconds, 1.75);
    EXPECT_EQ(merged.pool.tasks_run, 16u);
    EXPECT_DOUBLE_EQ(merged.pool.busy_seconds, 3.0);
    EXPECT_TRUE(merged.telemetry.enabled);
    EXPECT_EQ(merged.telemetry.events, 15u);
    EXPECT_EQ(merged.telemetry.hist[0].count(), 3u);
}

// ---- the sharded service ----------------------------------------------

std::string
dotSource(int n)
{
    std::string sum;
    for (int i = 0; i < n; ++i) {
        const std::string term = "(* a" + std::to_string(i) + " b" +
                                 std::to_string(i) + ")";
        sum = i == 0 ? term : "(+ " + sum + " " + term + ")";
    }
    return sum;
}

RunRequest
shardedRequest(const std::string& name, const ir::ExprPtr& source,
               int index)
{
    RunRequest request;
    request.name = name;
    request.source = source;
    request.pipeline = compiler::DriverConfig::greedy({}, 12);
    request.inputs = benchsuite::syntheticInputs(source);
    for (auto& [key, value] : request.inputs) value += index * 5 + 1;
    request.params.n = 256;
    request.params.prime_count = 4;
    request.params.seed = 17;
    request.key_budget = 0;
    return request;
}

/// A small mixed batch over a few distinct kernels.
std::vector<RunRequest>
mixedBatch(int jobs)
{
    const std::vector<ir::ExprPtr> kernels = {
        ir::parse(dotSource(2)), ir::parse(dotSource(4)),
        ir::parse("(+ (* x x) (* 3 y))"),
        ir::parse("(<< (Vec a0 a1 b0 b1) 1)")};
    std::vector<RunRequest> batch;
    for (int i = 0; i < jobs; ++i) {
        batch.push_back(shardedRequest(
            "k" + std::to_string(i),
            kernels[static_cast<std::size_t>(i) % kernels.size()], i));
    }
    return batch;
}

std::map<std::string, std::vector<std::int64_t>>
outputsByName(ServiceApi& service, std::vector<RunRequest> batch)
{
    std::map<std::string, std::vector<std::int64_t>> outputs;
    for (RunResponse& response : service.runBatch(std::move(batch))) {
        EXPECT_TRUE(response.ok)
            << response.name << ": " << response.error;
        outputs[response.name] = response.result.output;
    }
    return outputs;
}

TEST(ShardedServiceTest, OneShardIsBitIdenticalToPlainService)
{
    ServiceConfig config;
    config.num_workers = 2;
    config.max_lanes = 4;
    config.batch_window_seconds = 0.02;

    CompileService plain(config);
    const auto plain_outputs = outputsByName(plain, mixedBatch(12));

    config.shards = 1;
    ShardedService sharded(config);
    const auto sharded_outputs = outputsByName(sharded, mixedBatch(12));

    EXPECT_EQ(plain_outputs, sharded_outputs);
    EXPECT_EQ(sharded.shards(), 1);
    EXPECT_EQ(sharded.numWorkers(), plain.numWorkers());
}

TEST(ShardedServiceTest, OutputsInvariantAcrossShardAndWorkerCounts)
{
    std::map<std::string, std::vector<std::int64_t>> reference;
    for (const RunRequest& request : mixedBatch(12)) {
        const ir::Value expected =
            ir::Evaluator().evaluate(request.source, request.inputs);
        std::vector<std::int64_t> slots = expected.slots;
        if (!expected.is_vector) slots.resize(1);
        reference[request.name] = std::move(slots);
    }
    for (const auto& [shards, workers] :
         std::vector<std::pair<int, int>>{{1, 1}, {2, 2}, {4, 1}, {3, 8}}) {
        ServiceConfig config;
        config.shards = shards;
        config.num_workers = workers;
        config.max_lanes = 4;
        config.batch_window_seconds = 0.02;
        ShardedService service(config);
        const auto outputs = outputsByName(service, mixedBatch(12));
        ASSERT_EQ(outputs.size(), reference.size());
        for (const auto& [name, slots] : outputs) {
            ASSERT_TRUE(reference.count(name)) << name;
            // Slot 0 carries the semantic result for scalar kernels;
            // vector kernels compare the reference's full width. Any
            // routing, any shard count, any worker count: same bits.
            const std::vector<std::int64_t>& expected =
                reference.at(name);
            ASSERT_GE(slots.size(), expected.size())
                << name << " @ " << shards << " shards";
            for (std::size_t s = 0; s < expected.size(); ++s) {
                EXPECT_EQ(slots[s], expected[s])
                    << name << " slot " << s << " @ " << shards
                    << " shards x " << workers << " workers";
            }
        }
    }
}

TEST(ShardedServiceTest, CompileTrafficHonorsCacheAffinity)
{
    ServiceConfig config;
    config.shards = 4;
    config.num_workers = 1;
    ShardedService service(config);
    // Submitting the same kernel many times must hit exactly one
    // shard's cache: one miss fleet-wide, everything else hits or
    // joins in flight on that same shard.
    std::vector<std::future<CompileResponse>> futures;
    const ir::ExprPtr source = ir::parse(dotSource(4));
    for (int i = 0; i < 8; ++i) {
        CompileRequest request;
        request.name = "same" + std::to_string(i);
        request.source = source;
        request.pipeline = compiler::DriverConfig::greedy({}, 12);
        futures.push_back(service.submit(std::move(request)));
    }
    for (auto& future : futures) {
        const CompileResponse response = future.get();
        EXPECT_TRUE(response.ok) << response.error;
    }
    service.drain();
    const ServiceStats merged = service.stats();
    EXPECT_EQ(merged.cache.misses, 1u);
    EXPECT_EQ(merged.cache.hits + merged.cache.inflight_joins, 7u);
    int shards_with_entries = 0;
    for (int shard = 0; shard < service.shards(); ++shard) {
        if (service.shardStats(shard).cache.entries > 0) {
            ++shards_with_entries;
        }
    }
    EXPECT_EQ(shards_with_entries, 1);
    EXPECT_EQ(service.routerStats().compile_routed, 8u);
}

TEST(ShardedServiceTest, MergedStatsSatisfyInvariantsUnderConcurrentLoad)
{
    ServiceConfig config;
    config.shards = 3;
    config.num_workers = 2;
    config.max_lanes = 4;
    config.batch_window_seconds = 0.005;
    config.telemetry = true;
    ShardedService service(config);

    // Several client threads hammer the router concurrently (the
    // TSan job runs this too: router counters, per-shard load signals
    // and the merge path must all be clean).
    const int clients = 4;
    const int per_client = 10;
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&service, c] {
            std::vector<std::future<RunResponse>> futures;
            std::vector<RunRequest> batch = mixedBatch(per_client);
            for (RunRequest& request : batch) {
                request.name += "@" + std::to_string(c);
                for (auto& [key, value] : request.inputs) value += c;
                futures.push_back(service.submitRun(std::move(request)));
            }
            for (auto& future : futures) {
                EXPECT_TRUE(future.get().ok);
            }
        });
    }
    for (std::thread& thread : threads) thread.join();

    // Mid-flight-shaped check on the merged snapshot (not quiescent
    // yet from the stats' point of view until drain below).
    EXPECT_EQ(checkStatsInvariants(service.stats()), "");

    service.drain();
    const ServiceStats merged = service.stats();
    // Quiescent: stricter accounting equalities, including the new
    // load-signal zero (every noteEnqueued matched by a noteFinished
    // on every shard).
    EXPECT_EQ(checkStatsInvariants(merged, /*quiescent=*/true), "");
    EXPECT_EQ(merged.run_submitted,
              static_cast<std::uint64_t>(clients * per_client));
    // Per-shard snapshots pass the same quiescent checks, and their
    // totals add up to the merged view.
    std::uint64_t sum = 0;
    for (int shard = 0; shard < service.shards(); ++shard) {
        const ServiceStats stats = service.shardStats(shard);
        EXPECT_EQ(checkStatsInvariants(stats, /*quiescent=*/true), "")
            << "shard " << shard;
        sum += stats.run_submitted;
    }
    EXPECT_EQ(sum, merged.run_submitted);
    const RouterStats routed = service.routerStats();
    EXPECT_EQ(routed.run_affinity + routed.run_rerouted,
              merged.run_submitted);
}

TEST(ShardedServiceTest, MergedTraceGroupsTracksByShard)
{
    ServiceConfig config;
    config.shards = 2;
    config.num_workers = 1;
    config.telemetry = true;
    ShardedService service(config);
    std::vector<RunRequest> batch = mixedBatch(8);
    for (RunResponse& response : service.runBatch(std::move(batch))) {
        EXPECT_TRUE(response.ok) << response.error;
    }
    service.drain();
    std::ostringstream out;
    service.writeChromeTrace(out);
    const std::string trace = out.str();
    // One process (track group) per shard: pid N+1 labeled "shard N".
    EXPECT_NE(trace.find("\"name\":\"shard 0\""), std::string::npos);
    EXPECT_NE(trace.find("\"name\":\"shard 1\""), std::string::npos);
    EXPECT_NE(trace.find("\"pid\":1"), std::string::npos);
    EXPECT_NE(trace.find("\"pid\":2"), std::string::npos);
}

// ---- config validation ------------------------------------------------

TEST(ServiceConfigTest, ValidateAcceptsDefaultsAndEdgeCases)
{
    ServiceConfig config;
    EXPECT_EQ(config.validate(), "");
    // Deliberately-valid edge semantics with in-tree users: unbounded
    // caches and "row capacity" lane cap.
    config.kernel_cache_capacity = 0;
    config.run_cache_capacity = 0;
    config.max_lanes = 0;
    EXPECT_EQ(config.validate(), "");
    config.shards = 8;
    config.shard_id = 7;
    EXPECT_EQ(config.validate(), "");
}

TEST(ServiceConfigTest, ValidateRejectsNonsense)
{
    const auto reject = [](auto mutate) {
        ServiceConfig config;
        mutate(config);
        return !config.validate().empty();
    };
    EXPECT_TRUE(reject([](ServiceConfig& c) { c.num_workers = 0; }));
    EXPECT_TRUE(reject([](ServiceConfig& c) { c.num_workers = -4; }));
    EXPECT_TRUE(reject([](ServiceConfig& c) { c.max_lanes = -1; }));
    EXPECT_TRUE(reject(
        [](ServiceConfig& c) { c.batch_window_seconds = -0.5; }));
    EXPECT_TRUE(reject([](ServiceConfig& c) {
        c.batch_window_seconds = std::numeric_limits<double>::quiet_NaN();
    }));
    EXPECT_TRUE(reject([](ServiceConfig& c) { c.shards = 0; }));
    EXPECT_TRUE(reject([](ServiceConfig& c) { c.shards = -2; }));
    EXPECT_TRUE(reject([](ServiceConfig& c) { c.shard_id = -1; }));
    EXPECT_TRUE(reject([](ServiceConfig& c) {
        c.shards = 2;
        c.shard_id = 2;
    }));
    EXPECT_TRUE(reject([](ServiceConfig& c) { c.load_model.alpha = 0.0; }));
    EXPECT_TRUE(
        reject([](ServiceConfig& c) { c.load_model.alpha = 1.5; }));
    EXPECT_TRUE(reject(
        [](ServiceConfig& c) { c.load_model.window_safety = 0.0; }));
    EXPECT_TRUE(reject([](ServiceConfig& c) {
        c.load_model.window_floor_fraction = 2.0;
    }));
}

TEST(ServiceConfigTest, ConstructorsRejectInvalidConfigs)
{
    ServiceConfig config;
    config.num_workers = 0;
    EXPECT_THROW(CompileService{config}, std::invalid_argument);
    EXPECT_THROW(ShardedService{config}, std::invalid_argument);
    ServiceConfig nan_window;
    nan_window.batch_window_seconds =
        std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(CompileService{nan_window}, std::invalid_argument);
    ServiceConfig bad_shards;
    bad_shards.shards = -1;
    EXPECT_THROW(ShardedService{bad_shards}, std::invalid_argument);
}

} // namespace
} // namespace chehab::service
