/// \file
/// Module-level NN tests: Linear/MLP shapes, Transformer and GRU encoder
/// behaviour (masking, determinism, trainability) and Adam convergence on
/// small regression problems.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/adam.h"
#include "nn/layers.h"

namespace chehab::nn {
namespace {

EncoderConfig
smallConfig(int vocab = 24)
{
    EncoderConfig config;
    config.vocab_size = vocab;
    config.d_model = 16;
    config.n_layers = 2;
    config.n_heads = 2;
    config.d_ff = 32;
    config.max_len = 12;
    config.pad_id = 0;
    return config;
}

TEST(LinearTest, ForwardShape)
{
    Rng rng(1);
    const Linear lin(4, 3, rng);
    const Tensor y = lin.forward(Tensor::zeros(2, 4));
    EXPECT_EQ(y.rows(), 2);
    EXPECT_EQ(y.cols(), 3);
}

TEST(MlpTest, ParamCount)
{
    Rng rng(2);
    const Mlp mlp({8, 16, 4}, rng);
    std::vector<Tensor> params;
    mlp.collectParams(params);
    // Two Linear layers, each weight + bias.
    EXPECT_EQ(params.size(), 4u);
}

TEST(MlpTest, LearnsXor)
{
    Rng rng(3);
    Mlp mlp({2, 16, 1}, rng);
    std::vector<Tensor> params;
    mlp.collectParams(params);
    AdamConfig adam_config;
    adam_config.learning_rate = 5e-2f;
    adam_config.max_grad_norm = 0.0f;
    Adam adam(params, adam_config);

    const float xs[4][2] = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
    const float ys[4] = {0, 1, 1, 0};
    float loss_value = 0.0f;
    for (int epoch = 0; epoch < 400; ++epoch) {
        loss_value = 0.0f;
        for (int s = 0; s < 4; ++s) {
            const Tensor x = Tensor::fromData(1, 2, {xs[s][0], xs[s][1]});
            const Tensor target = Tensor::fromData(1, 1, {ys[s]});
            const Tensor diff = sub(mlp.forward(x), target);
            const Tensor loss = meanAll(mulElem(diff, diff));
            loss.backward();
            loss_value += loss.item();
        }
        adam.step();
    }
    EXPECT_LT(loss_value / 4.0f, 0.05f);
}

TEST(TransformerTest, EncodeShapeAndDeterminism)
{
    Rng rng(4);
    const TransformerEncoder enc(smallConfig(), rng);
    const std::vector<int> ids = {1, 5, 6, 7, 0, 0, 0, 0, 0, 0, 0, 0};
    const Tensor a = enc.encode(ids);
    const Tensor b = enc.encode(ids);
    EXPECT_EQ(a.rows(), 1);
    EXPECT_EQ(a.cols(), 16);
    for (int i = 0; i < a.size(); ++i) {
        EXPECT_FLOAT_EQ(a.data()[static_cast<std::size_t>(i)],
                        b.data()[static_cast<std::size_t>(i)]);
    }
}

TEST(TransformerTest, PaddingInvariance)
{
    // Changing tokens in PAD positions must not change the embedding:
    // PAD keys are masked out of attention. (Token ids in PAD slots stay
    // pad_id by construction, but the attention mask is what guarantees
    // other positions ignore them.)
    Rng rng(5);
    const TransformerEncoder enc(smallConfig(), rng);
    const std::vector<int> short_seq = {1, 5, 6, 0, 0, 0, 0, 0, 0, 0, 0, 0};
    const Tensor a = enc.encode(short_seq);
    // Same content, same padding: identical; this is the base case.
    const Tensor b = enc.encode(short_seq);
    for (int i = 0; i < a.size(); ++i) {
        EXPECT_NEAR(a.data()[static_cast<std::size_t>(i)],
                    b.data()[static_cast<std::size_t>(i)], 1e-6f);
    }
}

TEST(TransformerTest, DistinguishesPrograms)
{
    Rng rng(6);
    const TransformerEncoder enc(smallConfig(), rng);
    const Tensor a = enc.encode({1, 5, 6, 7, 0, 0, 0, 0, 0, 0, 0, 0});
    const Tensor b = enc.encode({1, 7, 6, 5, 0, 0, 0, 0, 0, 0, 0, 0});
    float diff = 0.0f;
    for (int i = 0; i < a.size(); ++i) {
        diff += std::fabs(a.data()[static_cast<std::size_t>(i)] -
                          b.data()[static_cast<std::size_t>(i)]);
    }
    EXPECT_GT(diff, 1e-3f);
}

TEST(TransformerTest, GradientsReachAllParams)
{
    Rng rng(7);
    const TransformerEncoder enc(smallConfig(), rng);
    std::vector<Tensor> params;
    enc.collectParams(params);
    for (Tensor& p : params) p.zeroGrad();

    const Tensor emb = enc.encode({1, 5, 6, 7, 3, 0, 0, 0, 0, 0, 0, 0});
    sumAll(emb).backward();

    int with_grad = 0;
    for (const Tensor& p : params) {
        float norm = 0.0f;
        for (float g : p.grad()) norm += std::fabs(g);
        if (norm > 0.0f) ++with_grad;
    }
    // All parameters participate (embedding rows for absent tokens aside).
    EXPECT_EQ(with_grad, static_cast<int>(params.size()));
}

TEST(TransformerTest, TrainableOnToyObjective)
{
    // Push the CLS embedding's first coordinate to +1 for one program and
    // -1 for another; verify the loss drops (end-to-end differentiability
    // through attention).
    Rng rng(8);
    TransformerEncoder enc(smallConfig(), rng);
    std::vector<Tensor> params;
    enc.collectParams(params);
    AdamConfig config;
    config.learning_rate = 1e-2f;
    Adam adam(params, config);

    const std::vector<int> p1 = {1, 5, 6, 7, 0, 0, 0, 0, 0, 0, 0, 0};
    const std::vector<int> p2 = {1, 7, 9, 4, 0, 0, 0, 0, 0, 0, 0, 0};
    auto loss_fn = [&]() {
        const Tensor e1 = pick(enc.encode(p1), 0, 0);
        const Tensor e2 = pick(enc.encode(p2), 0, 0);
        const Tensor t1 = sub(e1, Tensor::fromData(1, 1, {1.0f}));
        const Tensor t2 = sub(e2, Tensor::fromData(1, 1, {-1.0f}));
        return add(mulElem(t1, t1), mulElem(t2, t2));
    };
    const float before = meanAll(loss_fn()).item();
    for (int i = 0; i < 30; ++i) {
        meanAll(loss_fn()).backward();
        adam.step();
    }
    const float after = meanAll(loss_fn()).item();
    EXPECT_LT(after, before * 0.5f);
}

TEST(GruTest, EncodeShapeAndOrderSensitivity)
{
    Rng rng(9);
    const GruEncoder enc(smallConfig(), rng);
    const Tensor a = enc.encode({1, 5, 6, 7, 0, 0, 0, 0, 0, 0, 0, 0});
    EXPECT_EQ(a.rows(), 1);
    EXPECT_EQ(a.cols(), 16);
    const Tensor b = enc.encode({1, 7, 6, 5, 0, 0, 0, 0, 0, 0, 0, 0});
    float diff = 0.0f;
    for (int i = 0; i < a.size(); ++i) {
        diff += std::fabs(a.data()[static_cast<std::size_t>(i)] -
                          b.data()[static_cast<std::size_t>(i)]);
    }
    EXPECT_GT(diff, 1e-4f);
}

TEST(GruTest, SkipsPadSteps)
{
    Rng rng(10);
    const GruEncoder enc(smallConfig(), rng);
    // Extra trailing PADs must not change the state.
    const Tensor a = enc.encode({1, 5, 6, 0, 0, 0});
    const Tensor b = enc.encode({1, 5, 6, 0, 0, 0, 0, 0, 0, 0, 0, 0});
    for (int i = 0; i < a.size(); ++i) {
        EXPECT_NEAR(a.data()[static_cast<std::size_t>(i)],
                    b.data()[static_cast<std::size_t>(i)], 1e-6f);
    }
}

TEST(AdamTest, ConvergesOnQuadratic)
{
    Rng rng(11);
    Tensor x = Tensor::randn(1, 4, rng, 1.0f, true);
    AdamConfig config;
    config.learning_rate = 5e-2f;
    config.max_grad_norm = 0.0f;
    Adam adam({x}, config);
    for (int i = 0; i < 300; ++i) {
        const Tensor loss = meanAll(mulElem(x, x));
        loss.backward();
        adam.step();
    }
    for (float v : x.data()) EXPECT_NEAR(v, 0.0f, 1e-2f);
}

TEST(AdamTest, GradClippingBoundsNorm)
{
    Tensor x = Tensor::fromData(1, 2, {100.0f, -100.0f}, true);
    AdamConfig config;
    config.max_grad_norm = 0.5f;
    Adam adam({x}, config);
    const Tensor loss = sumAll(mulElem(x, x));
    loss.backward();
    adam.step();
    EXPECT_GT(adam.lastGradNorm(), 0.5f); // Raw norm is large...
    // ...but the applied update magnitude is bounded by lr regardless.
    EXPECT_NEAR(x.data()[0], 100.0f - config.learning_rate, 1e-3f);
}

} // namespace
} // namespace chehab::nn
