/// \file
/// Unit tests for the IR node representation, factories, structural
/// equality/hashing and tree surgery (replaceAt/subtreeAt).
#include <gtest/gtest.h>

#include "ir/expr.h"

namespace chehab::ir {
namespace {

TEST(ExprTest, LeafProperties)
{
    const ExprPtr v = var("x");
    EXPECT_EQ(v->op(), Op::Var);
    EXPECT_EQ(v->name(), "x");
    EXPECT_EQ(v->numNodes(), 1);
    EXPECT_EQ(v->height(), 1);
    EXPECT_FALSE(v->isPlain());

    const ExprPtr p = plainVar("w");
    EXPECT_TRUE(p->isPlain());

    const ExprPtr c = constant(42);
    EXPECT_TRUE(c->isPlain());
    EXPECT_EQ(c->value(), 42);
}

TEST(ExprTest, CompositeMetadata)
{
    const ExprPtr e = add(mul(var("a"), var("b")), constant(3));
    EXPECT_EQ(e->numNodes(), 5);
    EXPECT_EQ(e->height(), 3);
    EXPECT_FALSE(e->isPlain());
}

TEST(ExprTest, PlainPropagation)
{
    const ExprPtr plain = mul(plainVar("p"), constant(2));
    EXPECT_TRUE(plain->isPlain());
    const ExprPtr mixed = add(plain, var("x"));
    EXPECT_FALSE(mixed->isPlain());
}

TEST(ExprTest, StructuralEqualityIgnoresIdentity)
{
    const ExprPtr a = add(var("x"), var("y"));
    const ExprPtr b = add(var("x"), var("y"));
    EXPECT_NE(a.get(), b.get());
    EXPECT_TRUE(equal(a, b));
    EXPECT_EQ(a->hash(), b->hash());
}

TEST(ExprTest, StructuralInequality)
{
    EXPECT_FALSE(equal(add(var("x"), var("y")), add(var("y"), var("x"))));
    EXPECT_FALSE(equal(add(var("x"), var("y")), mul(var("x"), var("y"))));
    EXPECT_FALSE(equal(constant(1), constant(2)));
    EXPECT_FALSE(equal(rotate(vec({var("a"), var("b")}), 1),
                       rotate(vec({var("a"), var("b")}), 2)));
    EXPECT_FALSE(equal(var("x"), plainVar("x")));
}

TEST(ExprTest, NegVsSubDistinct)
{
    const ExprPtr n = neg(var("x"));
    const ExprPtr s = sub(var("x"), var("x"));
    EXPECT_EQ(n->op(), Op::Neg);
    EXPECT_EQ(s->op(), Op::Sub);
    EXPECT_FALSE(equal(n, s));
}

TEST(ExprTest, ToStringRoundShapes)
{
    EXPECT_EQ(add(var("a"), var("b"))->toString(), "(+ a b)");
    EXPECT_EQ(neg(var("a"))->toString(), "(- a)");
    EXPECT_EQ(sub(var("a"), var("b"))->toString(), "(- a b)");
    EXPECT_EQ(rotate(vec({var("a"), var("b")}), 1)->toString(),
              "(<< (Vec a b) 1)");
    EXPECT_EQ(plainVar("w")->toString(), "(pt w)");
    EXPECT_EQ(vecMul(vec({var("a")}), vec({constant(2)}))->toString(),
              "(VecMul (Vec a) (Vec 2))");
}

TEST(ExprTest, SubtreeAtPreorder)
{
    // (+ (* a b) c): indices 0:+  1:*  2:a  3:b  4:c
    const ExprPtr e = add(mul(var("a"), var("b")), var("c"));
    EXPECT_EQ(subtreeAt(e, 0)->op(), Op::Add);
    EXPECT_EQ(subtreeAt(e, 1)->op(), Op::Mul);
    EXPECT_EQ(subtreeAt(e, 2)->name(), "a");
    EXPECT_EQ(subtreeAt(e, 3)->name(), "b");
    EXPECT_EQ(subtreeAt(e, 4)->name(), "c");
}

TEST(ExprTest, ReplaceAtRebuildsPath)
{
    const ExprPtr e = add(mul(var("a"), var("b")), var("c"));
    const ExprPtr replaced = replaceAt(e, 1, constant(7));
    EXPECT_EQ(replaced->toString(), "(+ 7 c)");
    // Untouched sibling subtree is shared, not copied.
    EXPECT_EQ(replaced->child(1).get(), e->child(1).get());
    // Original is unchanged (immutability).
    EXPECT_EQ(e->toString(), "(+ (* a b) c)");
}

TEST(ExprTest, ReplaceAtRoot)
{
    const ExprPtr e = add(var("a"), var("b"));
    const ExprPtr replaced = replaceAt(e, 0, var("z"));
    EXPECT_EQ(replaced->toString(), "z");
}

TEST(ExprTest, ForEachNodeVisitsPreorder)
{
    const ExprPtr e = add(mul(var("a"), var("b")), var("c"));
    std::vector<Op> ops;
    std::vector<int> indices;
    forEachNode(e, [&](const ExprPtr& node, int index) {
        ops.push_back(node->op());
        indices.push_back(index);
    });
    ASSERT_EQ(ops.size(), 5u);
    EXPECT_EQ(ops[0], Op::Add);
    EXPECT_EQ(ops[1], Op::Mul);
    EXPECT_EQ(indices, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ExprTest, RotationStepNegative)
{
    const ExprPtr r = rotate(vec({var("a"), var("b"), var("c")}), -2);
    EXPECT_EQ(r->step(), -2);
}

TEST(ExprTest, FingerprintMatchesStructuralEquality)
{
    const ExprPtr a = add(mul(var("x"), var("y")), constant(3));
    const ExprPtr b = add(mul(var("x"), var("y")), constant(3));
    EXPECT_NE(a.get(), b.get());
    EXPECT_EQ(fingerprint(a), fingerprint(b));
}

TEST(ExprTest, FingerprintDistinguishesStructure)
{
    const Fingerprint base = fingerprint(add(var("x"), var("y")));
    EXPECT_NE(base, fingerprint(add(var("y"), var("x"))));
    EXPECT_NE(base, fingerprint(mul(var("x"), var("y"))));
    EXPECT_NE(base, fingerprint(sub(var("x"), var("y"))));
    EXPECT_NE(fingerprint(var("x")), fingerprint(plainVar("x")));
    EXPECT_NE(fingerprint(constant(1)), fingerprint(constant(2)));
    EXPECT_NE(fingerprint(rotate(var("v"), 1)),
              fingerprint(rotate(var("v"), 2)));
    // Child order and nesting matter.
    EXPECT_NE(fingerprint(add(add(var("a"), var("b")), var("c"))),
              fingerprint(add(var("a"), add(var("b"), var("c")))));
    // Null is the zero fingerprint, distinct from any real node.
    EXPECT_EQ(fingerprint(nullptr), Fingerprint{});
    EXPECT_NE(fingerprint(constant(0)), Fingerprint{});
}

} // namespace
} // namespace chehab::ir
