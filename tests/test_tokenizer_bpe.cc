/// \file
/// BPE tokenizer tests (the Fig. 10 ablation baseline): merge learning,
/// deterministic encoding, and the expected throughput disadvantage
/// relative to ICI's single-pass tokenization.
#include <gtest/gtest.h>

#include "ir/parser.h"
#include "tokenizer/bpe.h"
#include "tokenizer/ici.h"

namespace chehab::tokenizer {
namespace {

std::vector<std::string>
trainingCorpus()
{
    return {
        "(VecAdd (Vec a b) (Vec c d))",
        "(VecMul (Vec a c e g) (Vec b d f h))",
        "(+ (* a b) (* a c))",
        "(+ (* x0 y0) (* x1 y1))",
        "(VecAdd (VecMul (Vec a b) (Vec c d)) (Vec e f))",
        "(- (* alpha beta) (* alpha gamma))",
    };
}

TEST(BpeTest, LearnsMerges)
{
    BpeTokenizer bpe;
    bpe.train(trainingCorpus(), 50);
    EXPECT_GT(bpe.numMerges(), 0);
    EXPECT_LE(bpe.numMerges(), 50);
    EXPECT_GT(bpe.size(), 10);
}

TEST(BpeTest, MergesCompressFrequentWords)
{
    BpeTokenizer bpe;
    bpe.train(trainingCorpus(), 200);
    // "VecAdd" occurs often; after training it should need few subwords.
    const std::vector<std::string> tokens = bpe.tokenize("(VecAdd");
    EXPECT_LT(tokens.size(), 8u); // Unmerged would be 7 chars + markers.
}

TEST(BpeTest, DeterministicTokenization)
{
    BpeTokenizer bpe;
    bpe.train(trainingCorpus(), 100);
    EXPECT_EQ(bpe.tokenize("(+ (* a b) (* a c))"),
              bpe.tokenize("(+ (* a b) (* a c))"));
}

TEST(BpeTest, UntrainedFallsBackToChars)
{
    BpeTokenizer bpe;
    bpe.train({}, 10);
    const std::vector<std::string> tokens = bpe.tokenize("ab");
    // No merges learned: characters plus the end-of-word marker.
    ASSERT_EQ(tokens.size(), 3u);
    EXPECT_EQ(tokens[0], "a");
    EXPECT_EQ(tokens[1], "b");
}

TEST(BpeTest, EncodeShape)
{
    BpeTokenizer bpe;
    bpe.train(trainingCorpus(), 100);
    const std::vector<int> ids = bpe.encode(ir::parse("(+ a b)"), 24);
    ASSERT_EQ(ids.size(), 24u);
    EXPECT_EQ(ids[0], bpe.clsId());
}

TEST(BpeTest, IsNotAlphaRenamingInvariant)
{
    // The property ICI adds and BPE lacks: renamed programs tokenize
    // differently, inflating the effective vocabulary (§5.1).
    BpeTokenizer bpe;
    bpe.train(trainingCorpus(), 100);
    EXPECT_NE(bpe.tokenize("(+ aa bb)"), bpe.tokenize("(+ cc dd)"));
    EXPECT_EQ(canonicalForm(ir::parse("(+ aa bb)")),
              canonicalForm(ir::parse("(+ cc dd)")));
}

} // namespace
} // namespace chehab::tokenizer
