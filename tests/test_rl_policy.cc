/// \file
/// Policy network tests: masking correctness, hierarchical vs flat action
/// spaces, log-prob consistency between sample() and evaluate(), and
/// gradient flow.
#include <gtest/gtest.h>

#include <cmath>

#include "rl/policy.h"

namespace chehab::rl {
namespace {

PolicyConfig
smallPolicyConfig(bool hierarchical = true,
                  EncoderKind kind = EncoderKind::Transformer)
{
    PolicyConfig config;
    config.encoder.vocab_size = 32;
    config.encoder.d_model = 16;
    config.encoder.n_layers = 1;
    config.encoder.n_heads = 2;
    config.encoder.d_ff = 32;
    config.encoder.max_len = 16;
    config.encoder.pad_id = 0;
    config.num_rules = 6;
    config.max_locations = 4;
    config.hierarchical = hierarchical;
    config.encoder_kind = kind;
    config.rule_hidden = {32, 16};
    config.loc_hidden = {16, 16};
    config.critic_hidden = {32, 16};
    return config;
}

std::vector<int>
someIds()
{
    return {1, 4, 7, 9, 3, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0};
}

TEST(PolicyTest, SampleRespectsRuleMask)
{
    Rng rng(1);
    const Policy policy(smallPolicyConfig(), rng);
    // Only rule 2 (and END) available.
    const std::vector<int> counts = {0, 0, 3, 0, 0, 0, 1};
    Rng sample_rng(2);
    for (int i = 0; i < 50; ++i) {
        const ActionSample a =
            policy.sample(someIds(), counts, sample_rng);
        EXPECT_TRUE(a.rule == 2 || a.rule == 6) << a.rule;
        if (a.rule == 2) EXPECT_LT(a.location, 3);
    }
}

TEST(PolicyTest, GreedyIsDeterministic)
{
    Rng rng(3);
    const Policy policy(smallPolicyConfig(), rng);
    const std::vector<int> counts = {1, 2, 3, 0, 1, 0, 1};
    Rng r1(4), r2(99);
    const ActionSample a = policy.sample(someIds(), counts, r1, true);
    const ActionSample b = policy.sample(someIds(), counts, r2, true);
    EXPECT_EQ(a.rule, b.rule);
    EXPECT_EQ(a.location, b.location);
}

TEST(PolicyTest, EvaluateMatchesSampleLogProb)
{
    Rng rng(5);
    const Policy policy(smallPolicyConfig(), rng);
    const std::vector<int> counts = {2, 0, 3, 1, 0, 2, 1};
    Rng sample_rng(6);
    const ActionSample a = policy.sample(someIds(), counts, sample_rng);
    const PolicyEval eval =
        policy.evaluate(someIds(), counts, a.rule, a.location);
    EXPECT_NEAR(eval.log_prob.item(), a.log_prob, 1e-4f);
    EXPECT_NEAR(eval.value.item(), a.value, 1e-4f);
}

TEST(PolicyTest, FlatActionSpaceRespectsMask)
{
    Rng rng(7);
    const Policy policy(smallPolicyConfig(false), rng);
    const std::vector<int> counts = {0, 1, 0, 0, 2, 0, 1};
    Rng sample_rng(8);
    for (int i = 0; i < 50; ++i) {
        const ActionSample a = policy.sample(someIds(), counts, sample_rng);
        if (a.rule == 6) continue; // END.
        EXPECT_TRUE(a.rule == 1 || a.rule == 4) << a.rule;
        EXPECT_LT(a.location,
                  counts[static_cast<std::size_t>(a.rule)]);
    }
}

TEST(PolicyTest, FlatEvaluateConsistent)
{
    Rng rng(9);
    const Policy policy(smallPolicyConfig(false), rng);
    const std::vector<int> counts = {1, 1, 1, 1, 1, 1, 1};
    Rng sample_rng(10);
    const ActionSample a = policy.sample(someIds(), counts, sample_rng);
    const PolicyEval eval =
        policy.evaluate(someIds(), counts, a.rule, a.location);
    EXPECT_NEAR(eval.log_prob.item(), a.log_prob, 1e-4f);
}

TEST(PolicyTest, GruEncoderWorks)
{
    Rng rng(11);
    const Policy policy(
        smallPolicyConfig(true, EncoderKind::Gru), rng);
    const std::vector<int> counts = {1, 1, 0, 0, 0, 0, 1};
    Rng sample_rng(12);
    const ActionSample a = policy.sample(someIds(), counts, sample_rng);
    EXPECT_TRUE(a.rule == 0 || a.rule == 1 || a.rule == 6);
    EXPECT_TRUE(std::isfinite(a.log_prob));
    EXPECT_TRUE(std::isfinite(a.value));
}

TEST(PolicyTest, EntropyPositiveWithMultipleChoices)
{
    Rng rng(13);
    const Policy policy(smallPolicyConfig(), rng);
    const std::vector<int> counts = {1, 1, 1, 1, 1, 1, 1};
    const PolicyEval eval = policy.evaluate(someIds(), counts, 0, 0);
    EXPECT_GT(eval.entropy.item(), 0.0f);
}

TEST(PolicyTest, GradientsFlowFromLogProb)
{
    Rng rng(14);
    const Policy policy(smallPolicyConfig(), rng);
    const std::vector<int> counts = {1, 2, 0, 0, 0, 0, 1};
    std::vector<nn::Tensor> params = policy.params();
    for (nn::Tensor& p : params) p.zeroGrad();
    const PolicyEval eval = policy.evaluate(someIds(), counts, 1, 1);
    eval.log_prob.backward();
    float total = 0.0f;
    for (const nn::Tensor& p : params) {
        for (float g : p.grad()) total += std::fabs(g);
    }
    EXPECT_GT(total, 0.0f);
}

TEST(PolicyTest, ParamsIncludeAllHeads)
{
    Rng rng(15);
    const Policy hier(smallPolicyConfig(true), rng);
    const Policy flat(smallPolicyConfig(false), rng);
    // The flat policy has no location network.
    EXPECT_GT(hier.params().size(), flat.params().size());
}

} // namespace
} // namespace chehab::rl
