/// \file
/// Tests for the concurrent compile service: cache hit/miss accounting,
/// single-flight deduplication of concurrent identical requests, and
/// bit-identical output independent of worker count.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "ir/parser.h"
#include "service/cache_key.h"
#include "service/compile_service.h"

namespace chehab::service {
namespace {

CompileRequest
greedyRequest(const std::string& name, const std::string& source,
              int max_steps = 20)
{
    CompileRequest request;
    request.name = name;
    request.source = ir::parse(source);
    request.pipeline = compiler::DriverConfig::greedy({}, max_steps);
    return request;
}

/// A moderately expensive kernel: an 8-term dot product the greedy TRS
/// has to chew on for a while.
std::string
dotSource(int n, const std::string& prefix = "")
{
    std::string sum;
    for (int i = 0; i < n; ++i) {
        const std::string a = prefix + "a" + std::to_string(i);
        const std::string b = prefix + "b" + std::to_string(i);
        const std::string term = "(* " + a + " " + b + ")";
        sum = i == 0 ? term : "(+ " + sum + " " + term + ")";
    }
    return sum;
}

TEST(CompileServiceTest, SingleRequestCompiles)
{
    CompileService service({/*num_workers=*/2});
    std::vector<CompileResponse> responses =
        service.compileBatch({greedyRequest("dot", dotSource(4))});
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_TRUE(responses[0].ok) << responses[0].error;
    EXPECT_FALSE(responses[0].cache_hit);
    EXPECT_FALSE(responses[0].deduplicated);
    EXPECT_GT(responses[0].compiled.program.instrs.size(), 0u);
    EXPECT_GE(responses[0].worker_id, 0);

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.submitted, 1u);
    EXPECT_EQ(stats.compiled, 1u);
    EXPECT_EQ(stats.cache.misses, 1u);
    EXPECT_EQ(stats.cache.hits, 0u);
}

TEST(CompileServiceTest, CacheHitMissAccounting)
{
    CompileService service({/*num_workers=*/2});
    const std::string a = dotSource(4);
    const std::string b = dotSource(3, "z");
    std::vector<CompileResponse> responses = service.compileBatch(
        {greedyRequest("a0", a), greedyRequest("b0", b),
         greedyRequest("a1", a), greedyRequest("a2", a),
         greedyRequest("b1", b)});
    ASSERT_EQ(responses.size(), 5u);
    for (const CompileResponse& response : responses) {
        EXPECT_TRUE(response.ok) << response.name << ": " << response.error;
    }

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.submitted, 5u);
    EXPECT_EQ(stats.cache.entries, 2u);
    EXPECT_EQ(stats.cache.misses, 2u);
    EXPECT_EQ(stats.compiled, 2u); // Single-flight: one compile per key.
    EXPECT_EQ(stats.cache.hits + stats.cache.inflight_joins, 3u);
    // Every duplicate was served from the cache, one way or the other.
    for (const std::string& name : {"a1", "a2", "b1"}) {
        for (const CompileResponse& response : responses) {
            if (response.name != name) continue;
            EXPECT_TRUE(response.cache_hit || response.deduplicated)
                << name;
        }
    }
}

TEST(CompileServiceTest, SingleFlightDedupUnderConcurrency)
{
    // One worker, and a slow blocker kernel submitted first: the
    // duplicates all arrive while their owner compile is still queued
    // behind the blocker, so every one of them must join in flight.
    CompileService service({/*num_workers=*/1});
    std::vector<CompileRequest> batch;
    batch.push_back(greedyRequest("blocker", dotSource(8, "q"), 75));
    for (int i = 0; i < 7; ++i) {
        batch.push_back(greedyRequest("dup" + std::to_string(i),
                                      dotSource(8), 75));
    }
    std::vector<CompileResponse> responses =
        service.compileBatch(std::move(batch));
    ASSERT_EQ(responses.size(), 8u);
    for (const CompileResponse& response : responses) {
        EXPECT_TRUE(response.ok) << response.error;
    }

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.compiled, 2u); // blocker + one owner compile.
    EXPECT_EQ(stats.cache.misses, 2u);
    EXPECT_EQ(stats.cache.inflight_joins, 6u);
    EXPECT_EQ(stats.cache.hits, 0u);

    // All duplicates carry the identical artifact.
    const std::string reference =
        responses[1].compiled.program.disassemble();
    for (std::size_t i = 2; i < responses.size(); ++i) {
        EXPECT_EQ(responses[i].compiled.program.disassemble(), reference);
    }
}

TEST(CompileServiceTest, ByteIdenticalAcrossWorkerCounts)
{
    std::vector<std::string> sources = {
        dotSource(4), dotSource(6, "m"), "(VecAdd (Vec x y) (Vec u v))",
        "(* (+ a b) (+ a b))", dotSource(5, "k")};

    auto runAll = [&sources](int workers) {
        std::vector<CompileRequest> batch;
        for (std::size_t i = 0; i < sources.size(); ++i) {
            batch.push_back(greedyRequest("k" + std::to_string(i),
                                          sources[i]));
        }
        // Duplicates sprinkled in, so cache-served responses are
        // compared too.
        batch.push_back(greedyRequest("k0dup", sources[0]));
        batch.push_back(greedyRequest("k2dup", sources[2]));
        std::map<std::string, std::string> by_name;
        for (CompileResponse& response :
             CompileService({workers}).compileBatch(std::move(batch))) {
            EXPECT_TRUE(response.ok) << response.error;
            by_name[response.name] =
                response.compiled.program.disassemble();
        }
        return by_name;
    };

    const auto serial = runAll(1);
    const auto wide = runAll(8);
    ASSERT_EQ(serial.size(), wide.size());
    for (const auto& [name, text] : serial) {
        ASSERT_TRUE(wide.count(name)) << name;
        EXPECT_EQ(wide.at(name), text) << name;
        EXPECT_FALSE(text.empty());
    }
    // Duplicates resolve to the same stream as their originals.
    EXPECT_EQ(serial.at("k0"), serial.at("k0dup"));
    EXPECT_EQ(serial.at("k2"), serial.at("k2dup"));
}

TEST(CompileServiceTest, SyntacticVariantsShareOneEntry)
{
    // (+ x 0) canonicalizes to x, so both requests hit one cache slot.
    CompileService service({/*num_workers=*/2});
    CompileRequest plain;
    plain.name = "x";
    plain.source = ir::parse("x");
    plain.pipeline = compiler::DriverConfig::noOpt();
    CompileRequest variant;
    variant.name = "x_plus_0";
    variant.source = ir::parse("(+ x 0)");
    variant.pipeline = compiler::DriverConfig::noOpt();
    std::vector<CompileResponse> responses =
        service.compileBatch({plain, variant});
    EXPECT_TRUE(responses[0].ok);
    EXPECT_TRUE(responses[1].ok);
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.cache.entries, 1u);
    EXPECT_EQ(stats.cache.misses, 1u);
}

TEST(CompileServiceTest, PipelineAndWeightsAreCacheKeyed)
{
    CompileService service({/*num_workers=*/2});
    const std::string source = dotSource(3);
    CompileRequest greedy = greedyRequest("g", source);
    CompileRequest reweighted = greedyRequest("w", source);
    ir::CostWeights heavier_depth;
    heavier_depth.w_depth = 2.0;
    reweighted.pipeline =
        compiler::DriverConfig::greedy(heavier_depth, 20);
    CompileRequest noopt;
    noopt.name = "n";
    noopt.source = ir::parse(source);
    noopt.pipeline = compiler::DriverConfig::noOpt();
    service.compileBatch({greedy, reweighted, noopt});
    // Three distinct compilations despite one source program.
    EXPECT_EQ(service.stats().cache.entries, 3u);

    // A pipeline without the greedy pass ignores greedy-only parameters
    // in its fingerprint.
    CompileRequest noopt_other_budget = noopt;
    noopt_other_budget.name = "n2";
    noopt_other_budget.pipeline.max_steps = 3;
    service.compileBatch({noopt_other_budget});
    EXPECT_EQ(service.stats().cache.entries, 3u);
    EXPECT_EQ(service.stats().cache.hits, 1u);
}

TEST(CompileServiceTest, RlWithoutAgentFailsGracefully)
{
    CompileService service({/*num_workers=*/1});
    CompileRequest request;
    request.name = "rl";
    request.source = ir::parse("(+ a b)");
    request.pipeline = compiler::DriverConfig::rl();
    std::vector<CompileResponse> responses =
        service.compileBatch({request});
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_FALSE(responses[0].ok);
    EXPECT_NE(responses[0].error.find("RL agent"), std::string::npos);
    EXPECT_EQ(service.stats().failed, 1u);
}

TEST(CompileServiceTest, NullSourceRejectedOnSubmit)
{
    CompileService service({/*num_workers=*/1});
    CompileRequest request;
    request.name = "null";
    std::vector<CompileResponse> responses =
        service.compileBatch({request});
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_FALSE(responses[0].ok);
    EXPECT_FALSE(responses[0].error.empty());
}

TEST(CompileServiceTest, MatchesDirectPipelineOutput)
{
    const std::string source = dotSource(4);
    CompileService service({/*num_workers=*/4});
    std::vector<CompileResponse> responses =
        service.compileBatch({greedyRequest("direct", source)});
    ASSERT_TRUE(responses[0].ok);

    const compiler::Compiled direct = compiler::compileGreedy(
        service.ruleset(), ir::parse(source), {}, /*max_steps=*/20);
    EXPECT_EQ(responses[0].compiled.program.disassemble(),
              direct.program.disassemble());
    EXPECT_EQ(responses[0].compiled.optimized->toString(),
              direct.optimized->toString());
}

} // namespace
} // namespace chehab::service
