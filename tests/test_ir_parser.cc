/// \file
/// Parser unit tests: grammar coverage, round-tripping through the
/// printer, and error handling for malformed input (the dataset
/// validation path of §6).
#include <gtest/gtest.h>

#include <cstdint>

#include "ir/parser.h"
#include "support/error.h"

namespace chehab::ir {
namespace {

TEST(ParserTest, Leaves)
{
    EXPECT_EQ(parse("x")->op(), Op::Var);
    EXPECT_EQ(parse("x")->name(), "x");
    EXPECT_EQ(parse("42")->value(), 42);
    EXPECT_EQ(parse("-7")->value(), -7);
    EXPECT_EQ(parse("(pt w)")->op(), Op::PlainVar);
}

TEST(ParserTest, ScalarOps)
{
    EXPECT_EQ(parse("(+ a b)")->op(), Op::Add);
    EXPECT_EQ(parse("(- a b)")->op(), Op::Sub);
    EXPECT_EQ(parse("(- a)")->op(), Op::Neg);
    EXPECT_EQ(parse("(* a b)")->op(), Op::Mul);
}

TEST(ParserTest, NaryFoldsLeft)
{
    const ExprPtr e = parse("(+ a b c d)");
    EXPECT_EQ(e->toString(), "(+ (+ (+ a b) c) d)");
}

TEST(ParserTest, VectorOps)
{
    EXPECT_EQ(parse("(Vec a b c)")->arity(), 3u);
    EXPECT_EQ(parse("(VecAdd (Vec a b) (Vec c d))")->op(), Op::VecAdd);
    EXPECT_EQ(parse("(VecNeg (Vec a b))")->op(), Op::VecNeg);
}

TEST(ParserTest, Rotations)
{
    const ExprPtr left = parse("(<< (Vec a b c) 2)");
    EXPECT_EQ(left->op(), Op::Rotate);
    EXPECT_EQ(left->step(), 2);
    const ExprPtr right = parse("(>> (Vec a b c) 2)");
    EXPECT_EQ(right->step(), -2);
}

TEST(ParserTest, RoundTripThroughPrinter)
{
    const char* samples[] = {
        "(+ a (* b c))",
        "(VecMul (Vec a c e g) (Vec b d f h))",
        "(<< (VecAdd (Vec a b) (Vec c d)) 1)",
        "(- (- a))",
        "(* (pt w) x)",
        "(VecAdd (Vec (+ a b) (* c d)) (Vec 0 1))",
    };
    for (const char* text : samples) {
        const ExprPtr once = parse(text);
        const ExprPtr twice = parse(once->toString());
        EXPECT_TRUE(equal(once, twice)) << text;
    }
}

TEST(ParserTest, MotivatingExampleParses)
{
    // Eq. 1 of the paper.
    const ExprPtr e = parse(
        "(* (+ (* (* v1 v2) (* v3 v4)) (* (* v3 v4) (* v5 v6)))"
        "   (* (* v7 v8) (* v9 v10)))");
    EXPECT_EQ(e->op(), Op::Mul);
    EXPECT_EQ(e->numNodes(), 23);
}

TEST(ParserTest, WhitespaceInsensitive)
{
    EXPECT_TRUE(equal(parse("(+ a b)"), parse("  (  +   a\n\tb ) ")));
}

TEST(ParserTest, Errors)
{
    EXPECT_THROW(parse(""), CompileError);
    EXPECT_THROW(parse("(+ a"), CompileError);
    EXPECT_THROW(parse("(+ a b))"), CompileError);
    EXPECT_THROW(parse("(/ a b)"), CompileError);
    EXPECT_THROW(parse("(VecAdd a)"), CompileError);
    EXPECT_THROW(parse("(Vec)"), CompileError);
    EXPECT_THROW(parse("(<< v x)"), CompileError);
    EXPECT_THROW(parse(")"), CompileError);
}

TEST(ParserTest, IsValidMirrorsParse)
{
    EXPECT_TRUE(isValid("(+ a b)"));
    EXPECT_FALSE(isValid("(+ a"));
    EXPECT_FALSE(isValid("(% a b)"));
}

TEST(ParserTest, Int64BoundaryLiteralsParse)
{
    EXPECT_EQ(parse("9223372036854775807")->value(), INT64_MAX);
    EXPECT_EQ(parse("-9223372036854775808")->value(), INT64_MIN);
    // Inside larger expressions and rotation steps too.
    EXPECT_EQ(parse("(+ a 9223372036854775807)")->child(1)->value(),
              INT64_MAX);
}

TEST(ParserTest, OutOfRangeLiteralsThrowInsteadOfSaturating)
{
    // strtoll would silently clamp these to INT64_MAX/MIN; the parser
    // must reject them so a dataset literal never changes value.
    EXPECT_THROW(parse("9223372036854775808"), CompileError);
    EXPECT_THROW(parse("-9223372036854775809"), CompileError);
    EXPECT_THROW(parse("99999999999999999999"), CompileError);
    EXPECT_THROW(parse("(+ a 99999999999999999999)"), CompileError);
    EXPECT_THROW(parse("(Vec 1 99999999999999999999)"), CompileError);
    EXPECT_FALSE(isValid("99999999999999999999"));
}

} // namespace
} // namespace chehab::ir
