/// \file
/// Directed tests for the single-flight LRU cache in isolation
/// (service/single_flight.h) — the machinery under both the kernel
/// cache and the run cache. The service-level tests exercise it end to
/// end; these pin the two properties a refactor is most likely to
/// break silently:
///
///   1. pending entries are *never* evicted, whatever the capacity
///      pressure — their joiners hold futures that are about to
///      resolve from them;
///   2. the counters stay exact across evict-then-readmit cycles:
///      `entries` is monotonic (a readmitted key counts again),
///      `resident == entries - evictions` at every step, and a
///      readmission after eviction is a fresh miss that re-runs the
///      work, not a stale hit.
#include <gtest/gtest.h>

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "service/single_flight.h"

namespace chehab::service {
namespace {

using Cache = SingleFlightCache<int, std::hash<int>, std::string>;

void
expectExact(const Cache& cache, std::uint64_t misses, std::uint64_t hits,
            std::uint64_t joins, std::uint64_t entries,
            std::uint64_t evictions)
{
    const Cache::Stats stats = cache.stats();
    EXPECT_EQ(stats.misses, misses);
    EXPECT_EQ(stats.hits, hits);
    EXPECT_EQ(stats.inflight_joins, joins);
    EXPECT_EQ(stats.entries, entries);
    EXPECT_EQ(stats.evictions, evictions);
    // The resident count is not a separate counter but must always
    // reconcile with the monotonic pair.
    EXPECT_EQ(stats.resident, entries - evictions);
}

TEST(SingleFlightTest, OwnerThenHitThenJoinAccounting)
{
    Cache cache(0); // Unbounded.
    Cache::Admission first = cache.acquire(7);
    EXPECT_TRUE(first.owner);
    EXPECT_FALSE(first.was_pending);
    expectExact(cache, 1, 0, 0, 1, 0);

    // Second caller while pending: in-flight join, not a hit.
    Cache::Admission join = cache.acquire(7);
    EXPECT_FALSE(join.owner);
    EXPECT_TRUE(join.was_pending);
    EXPECT_EQ(join.entry, first.entry);
    expectExact(cache, 1, 0, 1, 1, 0);

    first.entry->publishReady("artifact-7", 0.01, 3);
    Cache::Admission hit = cache.acquire(7);
    EXPECT_FALSE(hit.owner);
    EXPECT_FALSE(hit.was_pending);
    expectExact(cache, 1, 1, 1, 1, 0);
    const Cache::Entry::Settled settled = hit.entry->waitSettled();
    ASSERT_NE(settled.artifact, nullptr);
    EXPECT_EQ(*settled.artifact, "artifact-7");
    EXPECT_EQ(settled.worker_id, 3);
}

TEST(SingleFlightTest, PendingEntriesAreNeverEvicted)
{
    Cache cache(1);
    // Two pending owners: the map exceeds capacity but nothing can be
    // evicted — both entries have (conceptual) joiners on the way.
    Cache::Admission a = cache.acquire(1);
    Cache::Admission b = cache.acquire(2);
    ASSERT_TRUE(a.owner);
    ASSERT_TRUE(b.owner);
    expectExact(cache, 2, 0, 0, 2, 0);

    // A third pending key still evicts nothing.
    Cache::Admission c = cache.acquire(3);
    ASSERT_TRUE(c.owner);
    expectExact(cache, 3, 0, 0, 3, 0);

    // Settle the LRU-oldest key only. The next admission may evict
    // exactly that one; the two still-pending keys must survive.
    a.entry->publishReady("one", 0.0, 0);
    Cache::Admission d = cache.acquire(4);
    ASSERT_TRUE(d.owner);
    expectExact(cache, 4, 0, 0, 4, 1);

    // The survivors are still the same live entries: joining them
    // attaches to the original pending slots.
    Cache::Admission joinB = cache.acquire(2);
    EXPECT_TRUE(joinB.was_pending);
    EXPECT_EQ(joinB.entry, b.entry);
    Cache::Admission joinC = cache.acquire(3);
    EXPECT_TRUE(joinC.was_pending);
    EXPECT_EQ(joinC.entry, c.entry);
    expectExact(cache, 4, 0, 2, 4, 1);

    // Once everything settles, capacity pressure drains the map down
    // to the bound on the next admission.
    b.entry->publishReady("two", 0.0, 0);
    c.entry->publishReady("three", 0.0, 0);
    d.entry->publishReady("four", 0.0, 0);
    Cache::Admission e = cache.acquire(5);
    ASSERT_TRUE(e.owner);
    e.entry->publishReady("five", 0.0, 0);
    const Cache::Stats drained = cache.stats();
    EXPECT_EQ(drained.resident, 1u);
    EXPECT_EQ(drained.resident, drained.entries - drained.evictions);
}

TEST(SingleFlightTest, ReinsertAfterEvictionIsAFreshMissWithExactCounts)
{
    Cache cache(1);
    Cache::Admission first = cache.acquire(1);
    first.entry->publishReady("v1", 0.0, 0);
    expectExact(cache, 1, 0, 0, 1, 0);

    // Key 2 displaces key 1 (both settled, capacity 1).
    Cache::Admission second = cache.acquire(2);
    second.entry->publishReady("v2", 0.0, 0);
    expectExact(cache, 2, 0, 0, 2, 1);

    // Key 1 again: the artifact is gone, so this must be a fresh miss
    // that makes the caller the owner again — never a hit on a stale
    // or dangling slot — and `entries` counts the readmission.
    Cache::Admission again = cache.acquire(1);
    EXPECT_TRUE(again.owner);
    EXPECT_FALSE(again.was_pending);
    EXPECT_NE(again.entry, first.entry);
    expectExact(cache, 3, 0, 0, 3, 2);
    again.entry->publishReady("v1-again", 0.0, 0);

    // And the readmitted entry serves hits like any first-time one.
    Cache::Admission hit = cache.acquire(1);
    EXPECT_FALSE(hit.owner);
    const Cache::Entry::Settled settled = hit.entry->waitSettled();
    ASSERT_NE(settled.artifact, nullptr);
    EXPECT_EQ(*settled.artifact, "v1-again");
    expectExact(cache, 3, 1, 0, 3, 2);
}

TEST(SingleFlightTest, EvictionFollowsLruOrderAndRecencyTouches)
{
    Cache cache(2);
    for (int key : {1, 2}) {
        Cache::Admission admission = cache.acquire(key);
        admission.entry->publishReady("k" + std::to_string(key), 0.0, 0);
    }
    // Touch key 1 so key 2 becomes the eviction candidate.
    cache.acquire(1);
    Cache::Admission third = cache.acquire(3);
    third.entry->publishReady("k3", 0.0, 0);
    // Key 1 must have survived (hit), key 2 must be gone (fresh miss).
    EXPECT_FALSE(cache.acquire(1).owner);
    EXPECT_TRUE(cache.acquire(2).owner);
}

TEST(SingleFlightTest, FailedEntriesAreCachedAndEvictable)
{
    Cache cache(1);
    Cache::Admission owner = cache.acquire(1);
    owner.entry->publishFailure("boom", 2);
    // Settled failures are served as hits (negative caching)...
    Cache::Admission hit = cache.acquire(1);
    EXPECT_FALSE(hit.owner);
    const Cache::Entry::Settled settled = hit.entry->waitSettled();
    ASSERT_NE(settled.error, nullptr);
    EXPECT_EQ(*settled.error, "boom");
    // ...and count as settled for eviction purposes.
    Cache::Admission other = cache.acquire(2);
    ASSERT_TRUE(other.owner);
    other.entry->publishReady("fine", 0.0, 0);
    EXPECT_TRUE(cache.acquire(1).owner); // Failure was evicted.
}

TEST(SingleFlightTest, ContinuationsFireOnceInAttachOrder)
{
    Cache cache(0);
    Cache::Admission owner = cache.acquire(1);
    std::vector<int> order;
    cache.acquire(1).entry->onSettled(
        [&](const Cache::Entry::Settled&) { order.push_back(1); });
    cache.acquire(1).entry->onSettled(
        [&](const Cache::Entry::Settled&) { order.push_back(2); });
    EXPECT_TRUE(order.empty()); // Nothing fires before publish.
    owner.entry->publishReady("ready", 0.0, 0);
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);
    // Late attach runs inline exactly once.
    cache.acquire(1).entry->onSettled(
        [&](const Cache::Entry::Settled&) { order.push_back(3); });
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[2], 3);
}

} // namespace
} // namespace chehab::service
