/// \file
/// Round-trip tests for the compiled-artifact serializer
/// (compiler/serialize.h), the encoding under the service's on-disk
/// persistence tier. The contract under test: deserialize(serialize(x))
/// reproduces x exactly — same IR (by structural equality *and*
/// fingerprint), same disassembled program, same key plan, same stats —
/// and the *content* section is byte-deterministic, so two compiles of
/// the same key serialize to identical bytes. Malformed payloads must
/// throw std::runtime_error, never crash or return a wrong artifact.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "compiler/keyselect.h"
#include "compiler/pipeline.h"
#include "compiler/serialize.h"
#include "ir/expr.h"
#include "ir/parser.h"
#include "trs/ruleset.h"

namespace chehab::compiler {
namespace {

std::string
dotSource(int n)
{
    std::string sum;
    for (int i = 0; i < n; ++i) {
        const std::string term = "(* a" + std::to_string(i) + " b" +
                                 std::to_string(i) + ")";
        sum = i == 0 ? term : "(+ " + sum + " " + term + ")";
    }
    return sum;
}

void
expectSameCompiled(const Compiled& a, const Compiled& b)
{
    ASSERT_NE(a.optimized, nullptr);
    ASSERT_NE(b.optimized, nullptr);
    EXPECT_TRUE(ir::equal(a.optimized, b.optimized));
    EXPECT_EQ(ir::fingerprint(a.optimized), ir::fingerprint(b.optimized));
    EXPECT_EQ(a.program.disassemble(), b.program.disassemble());
    EXPECT_EQ(a.program.num_regs, b.program.num_regs);
    EXPECT_EQ(a.program.output_reg, b.program.output_reg);
    EXPECT_EQ(a.program.output_width, b.program.output_width);
    EXPECT_EQ(a.program.mod_switch.points, b.program.mod_switch.points);
    EXPECT_EQ(a.program.mod_switch.margin_bits,
              b.program.mod_switch.margin_bits);
    EXPECT_EQ(a.program.mod_switch.min_level,
              b.program.mod_switch.min_level);
    EXPECT_EQ(a.key_planned, b.key_planned);
    EXPECT_EQ(a.key_plan.keys, b.key_plan.keys);
    EXPECT_EQ(a.key_plan.decomposition, b.key_plan.decomposition);
    EXPECT_DOUBLE_EQ(a.stats.initial_cost, b.stats.initial_cost);
    EXPECT_DOUBLE_EQ(a.stats.final_cost, b.stats.final_cost);
    EXPECT_EQ(a.stats.circuit_depth, b.stats.circuit_depth);
    EXPECT_EQ(a.stats.mult_depth, b.stats.mult_depth);
    EXPECT_EQ(a.stats.rewrite_steps, b.stats.rewrite_steps);
    EXPECT_EQ(a.stats.ir_counts.rotation, b.stats.ir_counts.rotation);
    EXPECT_EQ(a.stats.ir_counts.ct_ct_mul, b.stats.ir_counts.ct_ct_mul);
    ASSERT_EQ(a.stats.passes.size(), b.stats.passes.size());
    for (std::size_t i = 0; i < a.stats.passes.size(); ++i) {
        EXPECT_EQ(a.stats.passes[i].name, b.stats.passes[i].name);
        EXPECT_DOUBLE_EQ(a.stats.passes[i].seconds,
                         b.stats.passes[i].seconds);
        EXPECT_DOUBLE_EQ(a.stats.passes[i].cost_after,
                         b.stats.passes[i].cost_after);
        EXPECT_EQ(a.stats.passes[i].rewrite_steps,
                  b.stats.passes[i].rewrite_steps);
    }
}

TEST(CompilerSerializeTest, GreedyArtifactRoundTrips)
{
    const trs::Ruleset ruleset = trs::buildChehabRuleset();
    const Compiled original =
        compileGreedy(ruleset, ir::parse(dotSource(8)));
    const std::string bytes = serializeCompiled(original);
    const Compiled restored = deserializeCompiled(bytes);
    expectSameCompiled(original, restored);
}

TEST(CompilerSerializeTest, NoOptVectorArtifactRoundTrips)
{
    // Vector kernel with rotations: exercises Vec slots, Rotate steps
    // and a non-trivial key plan.
    const Compiled original = compileNoOpt(
        ir::parse("(VecMul (<< (Vec a b c d) 1) (Vec e f g h))"));
    const Compiled restored =
        deserializeCompiled(serializeCompiled(original));
    expectSameCompiled(original, restored);
}

TEST(CompilerSerializeTest, KeyPlanWithDecompositionRoundTrips)
{
    const trs::Ruleset ruleset = trs::buildChehabRuleset();
    Compiled original = compileGreedy(ruleset, ir::parse(dotSource(4)));
    // Force a decomposed plan (tight budget over many distinct steps)
    // so the sorted-map encoding is actually exercised.
    original.key_plan = selectRotationKeys({1, 2, 3, 5, 7, 11, 13}, 3);
    original.key_planned = true;
    ASSERT_FALSE(original.key_plan.decomposition.empty());
    const Compiled restored =
        deserializeCompiled(serializeCompiled(original));
    expectSameCompiled(original, restored);
}

TEST(CompilerSerializeTest, ContentBytesAreDeterministicAcrossCompiles)
{
    // Two independent compiles of the same key must serialize to
    // byte-identical *content* — this is the cross-process extension
    // of the determinism contract, and the reason a warm-loaded
    // artifact is indistinguishable from a fresh compile. Full
    // serializations differ only in the stats section (wall timings).
    const trs::Ruleset ruleset = trs::buildChehabRuleset();
    const ir::ExprPtr source = ir::parse(dotSource(8));
    const Compiled first = compileGreedy(ruleset, source);
    const Compiled second = compileGreedy(ruleset, source);
    EXPECT_EQ(serializeCompiledContent(first),
              serializeCompiledContent(second));
    // And round-tripping preserves the content bytes exactly.
    const Compiled restored =
        deserializeCompiled(serializeCompiled(first));
    EXPECT_EQ(serializeCompiledContent(first),
              serializeCompiledContent(restored));
}

TEST(CompilerSerializeTest, MalformedBytesThrowInsteadOfCrashing)
{
    const trs::Ruleset ruleset = trs::buildChehabRuleset();
    const std::string bytes =
        serializeCompiled(compileGreedy(ruleset, ir::parse(dotSource(4))));

    EXPECT_THROW(deserializeCompiled(std::string()), std::runtime_error);
    EXPECT_THROW(deserializeCompiled("garbage"), std::runtime_error);
    // Every strict prefix is a truncation; check a sweep of cut points
    // (cheap, and catches any field read without a bounds check).
    for (std::size_t cut : {std::size_t{1}, std::size_t{4},
                            bytes.size() / 4, bytes.size() / 2,
                            bytes.size() - 1}) {
        EXPECT_THROW(deserializeCompiled(bytes.substr(0, cut)),
                     std::runtime_error)
            << "cut=" << cut;
    }
    // Trailing junk is rejected too — the payload must be exact.
    EXPECT_THROW(deserializeCompiled(bytes + "x"), std::runtime_error);
}

TEST(CompilerSerializeTest, CorruptedOpTagsThrow)
{
    const trs::Ruleset ruleset = trs::buildChehabRuleset();
    const std::string bytes =
        serializeCompiled(compileGreedy(ruleset, ir::parse(dotSource(4))));
    // Flip every byte in turn to an invalid-ish value; any outcome is
    // acceptable except a crash or an artifact that silently decodes
    // from different bytes AND serializes back to the original. (Many
    // flips land in string payloads and legitimately decode; the point
    // of the sweep is that none of them aborts the process.)
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        std::string mutated = bytes;
        mutated[i] = static_cast<char>(mutated[i] ^ 0x7f);
        try {
            const Compiled decoded = deserializeCompiled(mutated);
            (void)decoded;
        } catch (const std::runtime_error&) {
            // Expected for most flips.
        }
    }
    SUCCEED();
}

} // namespace
} // namespace chehab::compiler
