/// \file
/// Benchmark-suite tests: every kernel builds, type checks, has the
/// expected structural properties, and computes the right function under
/// the reference evaluator.
#include <gtest/gtest.h>

#include "benchsuite/kernels.h"
#include "ir/analysis.h"
#include "ir/evaluator.h"

namespace chehab::benchsuite {
namespace {

TEST(KernelTest, FullSuiteBuildsAndTypeChecks)
{
    const std::vector<Kernel> kernels = fullSuite(8, 6);
    EXPECT_GE(kernels.size(), 25u);
    for (const Kernel& kernel : kernels) {
        ASSERT_NE(kernel.program, nullptr) << kernel.name;
        EXPECT_TRUE(ir::wellTyped(kernel.program)) << kernel.name;
        EXPECT_FALSE(kernel.name.empty());
    }
}

TEST(KernelTest, DotProductComputesDotProduct)
{
    const Kernel kernel = dotProduct(4);
    ir::Env env;
    for (int i = 0; i < 4; ++i) {
        env["a_" + std::to_string(i)] = i + 1; // 1..4
        env["b_" + std::to_string(i)] = 10;
    }
    EXPECT_EQ(ir::Evaluator().evaluate(kernel.program, env).scalar(), 100);
}

TEST(KernelTest, HammingDistanceOverBits)
{
    const Kernel kernel = hammingDistance(4);
    ir::Env env = {{"a_0", 1}, {"a_1", 0}, {"a_2", 1}, {"a_3", 1},
                   {"b_0", 0}, {"b_1", 0}, {"b_2", 1}, {"b_3", 0}};
    // Differences at positions 0 and 3.
    EXPECT_EQ(ir::Evaluator().evaluate(kernel.program, env).scalar(), 2);
}

TEST(KernelTest, L2Distance)
{
    const Kernel kernel = l2Distance(3);
    ir::Env env = {{"a_0", 5}, {"a_1", 2}, {"a_2", 9},
                   {"b_0", 1}, {"b_1", 2}, {"b_2", 7}};
    EXPECT_EQ(ir::Evaluator().evaluate(kernel.program, env).scalar(),
              16 + 0 + 4);
}

TEST(KernelTest, MatMulComputesProduct)
{
    const Kernel kernel = matMul(2);
    ir::Env env = {{"a_0_0", 1}, {"a_0_1", 2}, {"a_1_0", 3}, {"a_1_1", 4},
                   {"b_0_0", 5}, {"b_0_1", 6}, {"b_1_0", 7}, {"b_1_1", 8}};
    const ir::Value out = ir::Evaluator().evaluate(kernel.program, env);
    EXPECT_EQ(out.slots,
              (std::vector<std::int64_t>{19, 22, 43, 50}));
}

TEST(KernelTest, MaxIsExactForBits)
{
    const Kernel kernel = maxKernel(5);
    ir::Env zeros, mixed;
    for (int i = 0; i < 5; ++i) {
        zeros["a_" + std::to_string(i)] = 0;
        mixed["a_" + std::to_string(i)] = i == 3 ? 1 : 0;
    }
    EXPECT_EQ(ir::Evaluator().evaluate(kernel.program, zeros).scalar(), 0);
    EXPECT_EQ(ir::Evaluator().evaluate(kernel.program, mixed).scalar(), 1);
}

TEST(KernelTest, SortSortsBits)
{
    const Kernel kernel = sortKernel(4);
    ir::Env env = {{"a_0", 1}, {"a_1", 0}, {"a_2", 1}, {"a_3", 0}};
    const ir::Value out = ir::Evaluator().evaluate(kernel.program, env);
    EXPECT_EQ(out.slots, (std::vector<std::int64_t>{0, 0, 1, 1}));
}

TEST(KernelTest, PolyRegIsQuadratic)
{
    const Kernel kernel = polyReg(2);
    ir::Env env = {{"x_0", 3}, {"x_1", 5}, {"w", 2}, {"v", 1}, {"u", 4}};
    const ir::Value out = ir::Evaluator().evaluate(kernel.program, env);
    EXPECT_EQ(out.slots[0], 2 * 9 + 3 + 4);
    EXPECT_EQ(out.slots[1], 2 * 25 + 5 + 4);
}

TEST(KernelTest, BoxBlurSumsWindow)
{
    const Kernel kernel = boxBlur(3);
    ir::Env env;
    for (int i = 0; i < 3; ++i) {
        for (int j = 0; j < 3; ++j) {
            env["p_" + std::to_string(i) + "_" + std::to_string(j)] = 1;
        }
    }
    EXPECT_EQ(ir::Evaluator().evaluate(kernel.program, env).scalar(), 9);
}

TEST(KernelTest, TreeRegimesDifferStructurally)
{
    const Kernel homogeneous = polynomialTree(100, 100, 5);
    const Kernel mixed = polynomialTree(100, 50, 5);
    const Kernel sparse = polynomialTree(50, 50, 5);
    // Homogeneous full trees are all-multiply.
    const ir::OpCounts h = ir::countOps(homogeneous.program, false);
    EXPECT_EQ(h.ct_add, 0);
    EXPECT_GT(h.ct_ct_mul + h.square, 20);
    // Mixed trees have both op kinds.
    const ir::OpCounts m = ir::countOps(mixed.program, false);
    EXPECT_GT(m.ct_add, 0);
    // Sparse trees are much smaller than full trees at equal depth.
    EXPECT_LT(sparse.program->numNodes(), mixed.program->numNodes());
    // Depth parameter is honoured.
    EXPECT_EQ(ir::multiplicativeDepth(homogeneous.program), 5);
}

TEST(KernelTest, TreeNamesEncodeRegime)
{
    EXPECT_EQ(polynomialTree(100, 50, 10).name, "Tree 100-50-10");
}

TEST(KernelTest, SuiteSizesScaleWithParameter)
{
    EXPECT_LT(porcupineSuite(8).size(), porcupineSuite(16).size());
}

} // namespace
} // namespace chehab::benchsuite
