/// \file
/// Tests for the timer-augmented load model and the adaptive
/// scheduling layer it drives: EWMA update math, cold-start fallback
/// to the static estimate, arrival-rate-derived adaptive windows
/// (confidence gating, floor/ceiling clamps, burst resets),
/// consolidation share advice, determinism of cost-driven
/// consolidation (input-order invariance, heavy-group spreading, and
/// 1-vs-8-worker bit-identical outputs at the service level), and the
/// model's counter-consistency invariants under concurrent hammering
/// (run in CI's ThreadSanitizer job).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "benchsuite/kernels.h"
#include "ir/parser.h"
#include "service/batch_planner.h"
#include "service/compile_service.h"
#include "service/load_model.h"

namespace chehab::service {
namespace {

CacheKey
compileKey(std::uint64_t id)
{
    CacheKey key;
    key.source.hi = id;
    key.source.lo = ~id;
    key.pipeline = id * 31 + 7;
    return key;
}

BatchGroupKey
groupKey(std::uint64_t id, std::uint64_t params_hash = 0x50u)
{
    BatchGroupKey key;
    key.compile = compileKey(id);
    key.params_hash = params_hash;
    key.key_budget = 0;
    return key;
}

using Clock = LoadModel::Clock;

TEST(LoadModelTest, EwmaUpdateMath)
{
    LoadModelConfig config;
    config.alpha = 0.5;
    LoadModel model(config);
    const CacheKey key = compileKey(1);

    // First observation seeds the average; later ones blend with
    // alpha * sample + (1 - alpha) * ewma.
    model.observeCompile(key, 100.0, 2.0);
    EXPECT_DOUBLE_EQ(model.predictCompileSeconds(key, 100.0), 2.0);
    model.observeCompile(key, 100.0, 4.0);
    EXPECT_DOUBLE_EQ(model.predictCompileSeconds(key, 100.0),
                     0.5 * 4.0 + 0.5 * 2.0);
    model.observeCompile(key, 100.0, 2.0);
    EXPECT_DOUBLE_EQ(model.predictCompileSeconds(key, 100.0),
                     0.5 * 2.0 + 0.5 * 3.0);

    // Run profiles are independent of compile profiles.
    const BatchGroupKey run = groupKey(1);
    model.observeRun(run, 100.0, 1.0, 0.25);
    EXPECT_DOUBLE_EQ(model.predictRunSeconds(run, 100.0), 1.0);
    model.observeRun(run, 100.0, 3.0, 0.25);
    EXPECT_DOUBLE_EQ(model.predictRunSeconds(run, 100.0),
                     0.5 * 3.0 + 0.5 * 1.0);
}

TEST(LoadModelTest, ColdStartFallsBackToScaledStaticEstimate)
{
    LoadModelConfig config;
    config.alpha = 0.5;
    LoadModel model(config);

    // No observations at all: the seed ratio scales the static cost,
    // so cold predictions preserve the static LPT ordering.
    const double heavy =
        model.predictCompileSeconds(compileKey(1), 1000.0);
    const double light = model.predictCompileSeconds(compileKey(2), 10.0);
    EXPECT_DOUBLE_EQ(heavy, 1000.0 * config.seed_seconds_per_cost);
    EXPECT_DOUBLE_EQ(light, 10.0 * config.seed_seconds_per_cost);
    EXPECT_GT(heavy, light);

    // One measured compile calibrates the global seconds-per-cost
    // ratio; a *different* (still cold) key now predicts with it.
    model.observeCompile(compileKey(1), 100.0, 2.0); // ratio -> 0.02
    EXPECT_DOUBLE_EQ(model.predictCompileSeconds(compileKey(3), 50.0),
                     50.0 * (2.0 / 100.0));

    const LoadModelSnapshot snap = model.snapshot();
    EXPECT_EQ(snap.cold_predictions, 3u);
    EXPECT_EQ(snap.warm_predictions, 0u);
    EXPECT_EQ(snap.compile_observations, 1u);
}

TEST(LoadModelTest, DisabledModelStaysStatic)
{
    LoadModelConfig config;
    config.enabled = false;
    LoadModel model(config);
    const CacheKey key = compileKey(9);
    model.observeCompile(key, 100.0, 7.0);
    // Measured truth is ignored: predictions stay the scaled static
    // estimate (the ratio still calibrates, keeping units sane).
    EXPECT_DOUBLE_EQ(model.predictCompileSeconds(key, 100.0),
                     100.0 * (7.0 / 100.0));
    EXPECT_DOUBLE_EQ(
        model.adaptiveWaitSeconds(groupKey(9), 4, 0.125), 0.125);
    EXPECT_TRUE(model.preferRowShare(0x50u, 1e9));
}

TEST(LoadModelTest, AdaptiveWindowGatesOnArrivalConfidence)
{
    LoadModelConfig config;
    config.min_arrival_samples = 2;
    config.window_safety = 2.0;
    config.window_floor_fraction = 1.0 / 16.0;
    config.arrival_alpha = 0.5;
    LoadModel model(config);
    const BatchGroupKey key = groupKey(4);
    const double ceiling = 0.1;
    const Clock::time_point t0 = Clock::now();

    // Below min_arrival_samples the estimator has no confidence: the
    // fixed window always wins.
    model.observeArrival(key, t0, ceiling);
    EXPECT_DOUBLE_EQ(model.adaptiveWaitSeconds(key, 4, ceiling), ceiling);
    model.observeArrival(key, t0 + std::chrono::milliseconds(1), ceiling);
    EXPECT_DOUBLE_EQ(model.adaptiveWaitSeconds(key, 4, ceiling), ceiling);

    // Two 1ms gaps observed: expected fill = gap * safety * remaining
    // = 0.001 * 2 * 4 = 8ms, inside [floor, ceiling].
    model.observeArrival(key, t0 + std::chrono::milliseconds(2), ceiling);
    EXPECT_NEAR(model.adaptiveWaitSeconds(key, 4, ceiling), 0.008, 1e-9);
    // Clamps: a huge remaining-lane count hits the ceiling, a tiny one
    // the floor.
    EXPECT_DOUBLE_EQ(model.adaptiveWaitSeconds(key, 1000, ceiling),
                     ceiling);
    EXPECT_NEAR(model.adaptiveWaitSeconds(key, 1, ceiling),
                std::max(0.002, ceiling / 16.0), 1e-9);

    // A gap longer than the ceiling is a new burst, not a sample: the
    // rate estimate (and the wait derived from it) must not change.
    model.observeArrival(key, t0 + std::chrono::seconds(10), ceiling);
    EXPECT_NEAR(model.adaptiveWaitSeconds(key, 4, ceiling), 0.008, 1e-9);

    const LoadModelSnapshot snap = model.snapshot();
    EXPECT_EQ(snap.window_shrinks + snap.window_ceilings, 6u);
    EXPECT_EQ(snap.window_shrinks, 3u);
}

TEST(LoadModelTest, RowShareAdvicePricesAgainstCheapestExecution)
{
    LoadModelConfig config;
    config.merge_cost_factor = 4.0;
    LoadModel model(config);
    const std::uint64_t params = 0x77u;

    // Cold: no measured floor, always share.
    EXPECT_TRUE(model.preferRowShare(params, 123.0));

    model.observeRun(groupKey(1, params), 10.0, 0.010, 0.004);
    model.observeRun(groupKey(2, params), 10.0, 0.002, 0.001);
    // Floor is the cheapest measured execution (2ms): groups predicted
    // beyond 4x that are execution-dominated.
    EXPECT_TRUE(model.preferRowShare(params, 0.008));
    EXPECT_FALSE(model.preferRowShare(params, 0.009));
    // Other parameter families are unaffected.
    EXPECT_TRUE(model.preferRowShare(0x78u, 0.009));
}

/// Synthetic single-member group for consolidation tests (no lanes —
/// consolidateGroups only reads counts, strides, plans and keys).
BatchPlanner::Group
makeGroup(std::uint64_t id, int stride, int lanes, double predicted,
          int row_slots = 64, int lanes_cap = 0)
{
    BatchPlanner::Group group;
    group.key.params_hash = 0x50u;
    group.key.key_budget = 0;
    group.row_slots = row_slots;
    group.lanes_cap = lanes_cap;
    group.stride = stride;
    group.total_lanes = lanes;
    group.estimate_sum = predicted;
    group.predicted_sum = predicted;
    BatchPlanner::GroupMember member;
    member.compile = compileKey(id);
    member.min_stride = stride;
    group.members.push_back(std::move(member));
    return group;
}

std::vector<std::vector<std::uint64_t>>
rowLayout(const std::vector<BatchPlanner::Group>& rows)
{
    std::vector<std::vector<std::uint64_t>> layout;
    for (const BatchPlanner::Group& row : rows) {
        std::vector<std::uint64_t> ids;
        for (const BatchPlanner::GroupMember& member : row.members) {
            ids.push_back(member.compile.source.hi);
        }
        std::sort(ids.begin(), ids.end());
        layout.push_back(std::move(ids));
    }
    return layout;
}

ConsolidatePolicy
costPolicy(int parallelism, double heavy_threshold)
{
    ConsolidatePolicy policy;
    policy.cost_driven = true;
    policy.parallelism = parallelism;
    policy.shareable = [heavy_threshold](const BatchPlanner::Group& g) {
        return g.predicted_sum <= heavy_threshold;
    };
    return policy;
}

TEST(LoadModelTest, CostDrivenConsolidationIsOrderInvariant)
{
    // The same flushed set in any arrival order must produce the same
    // rows: consolidation is a pure function of (groups, predictions),
    // independent of interleaving — the property that keeps packed
    // noise accounting reproducible for a fixed composition.
    auto makeSet = [] {
        std::vector<BatchPlanner::Group> groups;
        groups.push_back(makeGroup(1, 8, 2, 10.0));
        groups.push_back(makeGroup(2, 8, 2, 9.0));
        groups.push_back(makeGroup(3, 4, 2, 0.5));
        groups.push_back(makeGroup(4, 4, 2, 0.25));
        groups.push_back(makeGroup(5, 2, 2, 0.125));
        return groups;
    };
    const ConsolidatePolicy policy = costPolicy(4, 1.0);
    std::vector<BatchPlanner::Group> base = makeSet();
    const auto reference =
        rowLayout(consolidateGroups(makeSet(), policy));
    std::sort(base.begin(), base.end(),
              [](const BatchPlanner::Group& a,
                 const BatchPlanner::Group& b) {
                  return a.members.front().compile.source.hi <
                         b.members.front().compile.source.hi;
              });
    do {
        std::vector<BatchPlanner::Group> permuted;
        for (const BatchPlanner::Group& group : base) {
            permuted.push_back(makeGroup(
                group.members.front().compile.source.hi, group.stride,
                group.total_lanes, group.predicted_sum));
        }
        EXPECT_EQ(rowLayout(consolidateGroups(std::move(permuted),
                                              policy)),
                  reference);
    } while (std::next_permutation(
        base.begin(), base.end(),
        [](const BatchPlanner::Group& a, const BatchPlanner::Group& b) {
            return a.members.front().compile.source.hi <
                   b.members.front().compile.source.hi;
        }));
}

TEST(LoadModelTest, CostDrivenConsolidationSpreadsHeavyGroups)
{
    // Two execution-dominated groups and two overhead-dominated ones,
    // all row-compatible. Cost-driven: the heavies take their own rows
    // while worker slots remain, the lights balance across them.
    // Legacy FFD: everything first-fits into one row.
    auto makeSet = [] {
        std::vector<BatchPlanner::Group> groups;
        groups.push_back(makeGroup(1, 8, 2, 10.0));
        groups.push_back(makeGroup(2, 8, 2, 9.0));
        groups.push_back(makeGroup(3, 8, 2, 0.5));
        groups.push_back(makeGroup(4, 8, 2, 0.25));
        return groups;
    };

    const auto cost_rows =
        consolidateGroups(makeSet(), costPolicy(/*parallelism=*/4, 1.0));
    ASSERT_EQ(cost_rows.size(), 2u);
    // Heaviest first: each heavy seeds its own row; the lights then
    // best-fit onto the least-loaded row — both land on group 2's row
    // (9 + 0.5 + 0.25 = 9.75 stays below group 1's 10), balancing the
    // predicted makespan instead of piling onto the first fit.
    EXPECT_EQ(rowLayout(cost_rows),
              (std::vector<std::vector<std::uint64_t>>{{1}, {2, 3, 4}}));
    EXPECT_NEAR(cost_rows[0].predicted_sum, 10.0, 1e-12);
    EXPECT_NEAR(cost_rows[1].predicted_sum, 9.75, 1e-12);

    const auto ffd_rows = consolidateGroups(makeSet(), {});
    ASSERT_EQ(ffd_rows.size(), 1u);
    EXPECT_EQ(ffd_rows[0].total_lanes, 8);

    // With no worker slot free, even heavies pack (serialization is
    // inevitable; sharing at least saves the row overhead).
    const auto saturated =
        consolidateGroups(makeSet(), costPolicy(/*parallelism=*/1, 1.0));
    ASSERT_EQ(saturated.size(), 1u);
}

std::string
dotSource(int n)
{
    std::string sum;
    for (int i = 0; i < n; ++i) {
        const std::string term = "(* a" + std::to_string(i) + " b" +
                                 std::to_string(i) + ")";
        sum = i == 0 ? term : "(+ " + sum + " " + term + ")";
    }
    return sum;
}

RunRequest
skewedRequest(const std::string& name, const ir::ExprPtr& source,
              int index)
{
    RunRequest request;
    request.name = name;
    request.source = source;
    request.pipeline = compiler::DriverConfig::greedy({}, 20);
    request.inputs = benchsuite::syntheticInputs(source);
    for (auto& [var, value] : request.inputs) value += index * 7 + 1;
    request.key_budget = 0;
    request.params.n = 256;
    request.params.prime_count = 4;
    request.params.seed = 17;
    return request;
}

TEST(LoadModelTest, AdaptiveSchedulingKeepsOutputsBitIdentical1v8)
{
    // A skewed mix (one wide reduction among small kernels) run twice
    // per key so the second round dispatches on *measured* profiles —
    // under 1 and 8 workers, with adaptive windows and cost-driven
    // consolidation on. The scheduler may group and order differently;
    // the outputs must match the solo baseline bit for bit.
    const std::vector<ir::ExprPtr> sources = {
        ir::parse(dotSource(16)), ir::parse(dotSource(2)),
        ir::parse(dotSource(3)), ir::parse(dotSource(4))};
    auto makeRound = [&](int round) {
        std::vector<RunRequest> batch;
        for (std::size_t k = 0; k < sources.size(); ++k) {
            for (int i = 0; i < 2; ++i) {
                batch.push_back(skewedRequest(
                    "k" + std::to_string(k) + "." +
                        std::to_string(round) + "." + std::to_string(i),
                    sources[k],
                    static_cast<int>(k) * 10 + round * 100 + i));
            }
        }
        return batch;
    };

    std::map<std::string, std::vector<std::int64_t>> solo;
    {
        ServiceConfig config;
        config.num_workers = 2;
        config.max_lanes = 1; // Batching off: the reference outputs.
        CompileService service(config);
        for (int round = 0; round < 2; ++round) {
            for (const RunResponse& response :
                 service.runBatch(makeRound(round))) {
                ASSERT_TRUE(response.ok)
                    << response.name << ": " << response.error;
                solo[response.name] = response.result.output;
            }
        }
    }

    for (int workers : {1, 8}) {
        ServiceConfig config;
        config.num_workers = workers;
        config.max_lanes = 0;
        config.batch_window_seconds = 0.01;
        config.cross_kernel = true;
        config.adaptive_window = true;
        config.load_model.min_arrival_samples = 2; // Adapt quickly.
        CompileService service(config);
        // Two rounds through one service: the second dispatches,
        // consolidates and windows on profiles the first one measured.
        for (int round = 0; round < 2; ++round) {
            for (const RunResponse& response :
                 service.runBatch(makeRound(round))) {
                ASSERT_TRUE(response.ok)
                    << response.name << ": " << response.error;
                ASSERT_TRUE(solo.count(response.name)) << response.name;
                EXPECT_EQ(response.result.output,
                          solo.at(response.name))
                    << response.name << " at " << workers << " workers";
            }
        }
        const ServiceStats stats = service.stats();
        EXPECT_GT(stats.load_model.warm_predictions, 0u) << workers;
        EXPECT_GT(stats.load_model.run_observations, 0u) << workers;
    }
}

TEST(LoadModelTest, CountersStayConsistentUnderConcurrentHammering)
{
    // Exercised under CI's ThreadSanitizer job: concurrent observers
    // and predictors over shared keys, then the monotonic-counter
    // invariants on the final snapshot.
    LoadModelConfig config;
    config.min_arrival_samples = 4;
    LoadModel model(config);
    constexpr int kThreads = 4;
    constexpr int kOps = 400;

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&model, t] {
            const Clock::time_point base = Clock::now();
            for (int i = 0; i < kOps; ++i) {
                const auto id = static_cast<std::uint64_t>(i % 7);
                model.predictCompileSeconds(compileKey(id), 10.0 + i);
                model.observeCompile(compileKey(id), 10.0 + i,
                                     1e-4 * (t + 1));
                model.predictRunSeconds(groupKey(id), 5.0 + i);
                model.observeRun(groupKey(id), 5.0 + i, 2e-4 * (t + 1),
                                 1e-4);
                model.observeArrival(groupKey(id),
                                     base + std::chrono::microseconds(i),
                                     0.5);
                model.adaptiveWaitSeconds(groupKey(id), 3, 0.5);
                model.preferRowShare(0x50u, 1e-3 * i);
            }
        });
    }
    for (std::thread& thread : threads) thread.join();

    const LoadModelSnapshot snap = model.snapshot();
    const auto total = static_cast<std::uint64_t>(kThreads * kOps);
    EXPECT_EQ(snap.compile_observations, total);
    EXPECT_EQ(snap.run_observations, total);
    // Every predict call is counted exactly once, warm or cold.
    EXPECT_EQ(snap.warm_predictions + snap.cold_predictions, 2 * total);
    // Every window query is counted exactly once, shrink or ceiling.
    EXPECT_EQ(snap.window_shrinks + snap.window_ceilings, total);
    // Every share query is counted exactly once.
    EXPECT_EQ(snap.share_preferred + snap.solo_preferred, total);
    // Profile maps hold at most the distinct keys observed.
    EXPECT_EQ(snap.compile_profiles, 7u);
    EXPECT_EQ(snap.run_profiles, 7u);
}

} // namespace
} // namespace chehab::service
