/// \file
/// CoyoteSim baseline tests: semantic correctness on the benchmark
/// shapes, vectorization evidence (rotations + masks, fewer scalar ops),
/// compile-time growth with circuit size, and budget accounting.
#include <gtest/gtest.h>

#include "baselines/coyote_sim.h"
#include "benchsuite/kernels.h"
#include "ir/analysis.h"
#include "ir/evaluator.h"
#include "ir/parser.h"

namespace chehab::baselines {
namespace {

CoyoteConfig
fastConfig()
{
    CoyoteConfig config;
    config.search_budget = 2000;
    return config;
}

TEST(CoyoteSimTest, PreservesSemanticsOnSimplePrograms)
{
    const char* programs[] = {
        "(+ (* a b) (* c d))",
        "(Vec (+ a b) (+ c d) (+ e f))",
        "(Vec (* a b) (- c d))",
        "(+ (+ (* a0 b0) (* a1 b1)) (+ (* a2 b2) (* a3 b3)))",
        "(- (- a))",
    };
    for (const char* text : programs) {
        const ir::ExprPtr source = ir::parse(text);
        const CoyoteResult result = coyoteCompile(source, fastConfig());
        ASSERT_NE(result.program, nullptr) << text;
        EXPECT_TRUE(ir::wellTyped(result.program)) << text;
        EXPECT_TRUE(ir::equivalentOn(source, result.program, 10)) << text;
    }
}

TEST(CoyoteSimTest, PreservesSemanticsOnBenchmarkKernels)
{
    const benchsuite::Kernel kernels[] = {
        benchsuite::dotProduct(4),
        benchsuite::hammingDistance(4),
        benchsuite::l2Distance(4),
        benchsuite::matMul(3),
        benchsuite::maxKernel(3),
        benchsuite::robertsCross(3),
    };
    for (const auto& kernel : kernels) {
        const CoyoteResult result =
            coyoteCompile(kernel.program, fastConfig());
        EXPECT_TRUE(ir::equivalentOn(kernel.program, result.program, 6))
            << kernel.name;
    }
}

TEST(CoyoteSimTest, VectorizesScalarCode)
{
    const benchsuite::Kernel kernel = benchsuite::dotProduct(8);
    const CoyoteResult result = coyoteCompile(kernel.program, fastConfig());
    const ir::OpCounts counts = ir::countOps(result.program);
    // All compute is in vector form after Coyote.
    EXPECT_EQ(counts.scalar_ops, 0);
    EXPECT_GT(counts.vector_ops, 0);
}

TEST(CoyoteSimTest, ProducesRotationHeavyCircuits)
{
    // Coyote's signature (§7.5): correct but rotation/mask heavy compared
    // to the packed-reduction circuits CHEHAB RL finds.
    const benchsuite::Kernel kernel = benchsuite::matMul(3);
    const CoyoteResult result = coyoteCompile(kernel.program, fastConfig());
    const ir::OpCounts counts = ir::countOps(result.program);
    EXPECT_GT(counts.rotation + counts.ct_pt_mul, 3);
}

TEST(CoyoteSimTest, CompileTimeGrowsWithSize)
{
    CoyoteConfig config;
    config.search_budget = 200000;
    const CoyoteResult small =
        coyoteCompile(benchsuite::dotProduct(4).program, config);
    const CoyoteResult large =
        coyoteCompile(benchsuite::dotProduct(16).program, config);
    EXPECT_GT(large.candidates_explored, small.candidates_explored);
}

TEST(CoyoteSimTest, HandlesPlainLeaves)
{
    const ir::ExprPtr source =
        ir::parse("(Vec (+ (* 2 a) b) (+ (* 3 c) d))");
    const CoyoteResult result = coyoteCompile(source, fastConfig());
    EXPECT_TRUE(ir::equivalentOn(source, result.program, 8));
}

TEST(CoyoteSimTest, DegenerateLeafProgram)
{
    const CoyoteResult result = coyoteCompile(ir::parse("x"), fastConfig());
    EXPECT_EQ(result.program->toString(), "x");
}

} // namespace
} // namespace chehab::baselines
