/// \file
/// Tests for the PassManager/CompilerDriver architecture: the legacy
/// entry points must be bit-identical to the hand-rolled pre-refactor
/// pass sequences (golden equivalence via FheProgram::disassemble()),
/// per-pass stats must be recorded, the registry must support custom
/// passes, and DriverConfig fingerprints must identify pipelines.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "compiler/driver.h"
#include "compiler/passes.h"
#include "compiler/pipeline.h"
#include "compiler/schedule.h"
#include "ir/parser.h"
#include "rl/agent.h"
#include "support/error.h"
#include "trs/rewriter.h"
#include "trs/ruleset.h"

namespace chehab::compiler {
namespace {

std::string
dotSource(int n)
{
    std::string sum;
    for (int i = 0; i < n; ++i) {
        const std::string term = "(* a" + std::to_string(i) + " b" +
                                 std::to_string(i) + ")";
        sum = i == 0 ? term : "(+ " + sum + " " + term + ")";
    }
    return sum;
}

// ---- golden equivalence to the pre-refactor pipelines ---------------

TEST(CompilerDriverTest, NoOptMatchesLegacySequence)
{
    const ir::ExprPtr source = ir::parse("(+ (* a b) (+ c 0))");

    // The pre-refactor compileNoOpt: canonicalize, then schedule.
    const ir::ExprPtr canonical = canonicalize(source);
    const FheProgram legacy = schedule(canonical);

    const Compiled driver = compileNoOpt(source);
    EXPECT_EQ(driver.program.disassemble(), legacy.disassemble());
    EXPECT_EQ(driver.optimized->toString(), canonical->toString());
    EXPECT_DOUBLE_EQ(driver.stats.initial_cost, ir::cost(canonical));
    EXPECT_DOUBLE_EQ(driver.stats.final_cost, ir::cost(canonical));
    EXPECT_EQ(driver.stats.rewrite_steps, 0);
}

TEST(CompilerDriverTest, GreedyMatchesLegacySequence)
{
    const trs::Ruleset ruleset = trs::buildChehabRuleset();
    const ir::ExprPtr source = ir::parse(dotSource(4));
    const ir::CostWeights weights{};
    const int max_steps = 30;

    // The pre-refactor compileGreedy: canonicalize, greedy TRS,
    // schedule.
    const ir::ExprPtr canonical = canonicalize(source);
    trs::OptimizeResult legacy_opt =
        trs::greedyOptimize(ruleset, canonical, weights, {}, max_steps);
    const FheProgram legacy = schedule(legacy_opt.program);

    const Compiled driver =
        compileGreedy(ruleset, source, weights, max_steps);
    EXPECT_EQ(driver.program.disassemble(), legacy.disassemble());
    EXPECT_EQ(driver.optimized->toString(),
              legacy_opt.program->toString());
    EXPECT_DOUBLE_EQ(driver.stats.initial_cost, legacy_opt.initial_cost);
    EXPECT_EQ(driver.stats.rewrite_steps, legacy_opt.steps);
}

TEST(CompilerDriverTest, AgentMatchesLegacySequence)
{
    const trs::Ruleset ruleset = trs::buildChehabRuleset();
    rl::AgentConfig config;
    config.compile_rollouts = 1;
    const rl::RlAgent agent(ruleset, config); // Untrained: still
                                              // deterministic.
    const ir::ExprPtr source = ir::parse(dotSource(3));

    // The pre-refactor compileWithAgent: canonicalize, agent optimize,
    // schedule.
    const ir::ExprPtr canonical = canonicalize(source);
    rl::AgentResult legacy_opt = agent.optimize(canonical);
    const FheProgram legacy = schedule(legacy_opt.program);

    const Compiled driver = compileWithAgent(agent, source);
    EXPECT_EQ(driver.program.disassemble(), legacy.disassemble());
    EXPECT_EQ(driver.optimized->toString(),
              legacy_opt.program->toString());
    EXPECT_DOUBLE_EQ(driver.stats.initial_cost, legacy_opt.initial_cost);
    EXPECT_EQ(driver.stats.rewrite_steps, legacy_opt.steps);
}

TEST(CompilerDriverTest, RepeatedCompilesAreBitIdentical)
{
    const trs::Ruleset ruleset = trs::buildChehabRuleset();
    const ir::ExprPtr source = ir::parse(dotSource(5));
    const Compiled first = compileGreedy(ruleset, source);
    const Compiled second = compileGreedy(ruleset, source);
    EXPECT_EQ(first.program.disassemble(), second.program.disassemble());
}

// ---- per-pass statistics --------------------------------------------

TEST(CompilerDriverTest, PerPassStatsRecorded)
{
    const trs::Ruleset ruleset = trs::buildChehabRuleset();
    const Compiled compiled =
        compileGreedy(ruleset, ir::parse(dotSource(4)));

    ASSERT_EQ(compiled.stats.passes.size(), 3u);
    EXPECT_EQ(compiled.stats.passes[0].name, "canonicalize");
    EXPECT_EQ(compiled.stats.passes[1].name, "greedy-trs");
    EXPECT_EQ(compiled.stats.passes[2].name, "schedule");

    double sum = 0.0;
    for (const PassStats& pass : compiled.stats.passes) {
        EXPECT_GE(pass.seconds, 0.0) << pass.name;
        sum += pass.seconds;
    }
    EXPECT_DOUBLE_EQ(compiled.stats.totalSeconds(), sum);

    // The TRS pass is where the cost drops and the rewrites happen.
    const PassStats& trs_pass = compiled.stats.passes[1];
    EXPECT_LT(trs_pass.cost_after, trs_pass.cost_before);
    EXPECT_EQ(trs_pass.rewrite_steps, compiled.stats.rewrite_steps);
    EXPECT_GT(trs_pass.rewrite_steps, 0);

    // Schedule does not change the IR cost.
    const PassStats& schedule_pass = compiled.stats.passes[2];
    EXPECT_DOUBLE_EQ(schedule_pass.cost_before,
                     schedule_pass.cost_after);
}

// ---- registry -------------------------------------------------------

TEST(CompilerDriverTest, UnknownPassThrows)
{
    DriverConfig config;
    config.passes = {"canonicalize", "no-such-pass", "schedule"};
    EXPECT_THROW(CompilerDriver().compile(ir::parse("(+ a b)"), config),
                 CompileError);
}

TEST(CompilerDriverTest, BuiltInPassesRegistered)
{
    const std::vector<std::string> names = registeredPassNames();
    for (const char* required : {"canonicalize", "greedy-trs", "rl-trs",
                                 "schedule", "key-select"}) {
        EXPECT_NE(std::find(names.begin(), names.end(), required),
                  names.end())
            << required;
    }
}

namespace {

/// A pass that proves third-party stages plug into the driver: negates
/// the program twice (a semantic no-op that changes the tree shape
/// until canonicalize cleans it, so we just count invocations).
class CountingPass final : public Pass
{
  public:
    explicit CountingPass(int* counter) : counter_(counter) {}
    std::string name() const override { return "counting"; }

    void
    run(CompileState&, const PassContext&) const override
    {
        ++*counter_;
    }

  private:
    int* counter_;
};

} // namespace

TEST(CompilerDriverTest, CustomPassPluggable)
{
    static int invocations = 0;
    invocations = 0;
    registerPass("counting", [] {
        return std::unique_ptr<Pass>(new CountingPass(&invocations));
    });

    DriverConfig config;
    config.passes = {"canonicalize", "counting", "schedule"};
    const Compiled compiled =
        CompilerDriver().compile(ir::parse("(+ a b)"), config);
    EXPECT_EQ(invocations, 1);
    ASSERT_EQ(compiled.stats.passes.size(), 3u);
    EXPECT_EQ(compiled.stats.passes[1].name, "counting");
    // And the pipeline output is unaffected by the no-op stage.
    EXPECT_EQ(compiled.program.disassemble(),
              compileNoOpt(ir::parse("(+ a b)")).program.disassemble());
}

// ---- config fingerprints --------------------------------------------

TEST(CompilerDriverTest, FingerprintIdentifiesPipelines)
{
    const DriverConfig noopt = DriverConfig::noOpt();
    const DriverConfig greedy = DriverConfig::greedy();
    EXPECT_NE(noopt.fingerprint(), greedy.fingerprint());
    EXPECT_NE(greedy.fingerprint(), DriverConfig::rl().fingerprint());

    // Parameters of absent passes do not matter...
    DriverConfig noopt_budget = noopt;
    noopt_budget.max_steps = 3;
    noopt_budget.weights.w_depth = 9.0;
    EXPECT_EQ(noopt.fingerprint(), noopt_budget.fingerprint());

    // ...parameters of present passes do.
    DriverConfig greedy_budget = greedy;
    greedy_budget.max_steps = 3;
    EXPECT_NE(greedy.fingerprint(), greedy_budget.fingerprint());
    ir::CostWeights heavier;
    heavier.w_depth = 2.0;
    EXPECT_NE(DriverConfig::greedy(heavier).fingerprint(),
              greedy.fingerprint());

    // Pass order is part of the identity.
    DriverConfig reordered = greedy;
    std::swap(reordered.passes[0], reordered.passes[1]);
    EXPECT_NE(reordered.fingerprint(), greedy.fingerprint());

    // Name-boundary confusion is not: {"ab","c"} vs {"a","bc"}.
    DriverConfig ab_c;
    ab_c.passes = {"ab", "c"};
    DriverConfig a_bc;
    a_bc.passes = {"a", "bc"};
    EXPECT_NE(ab_c.fingerprint(), a_bc.fingerprint());
}

TEST(CompilerDriverTest, DescribeNamesThePipeline)
{
    EXPECT_EQ(DriverConfig::noOpt().describe(), "canonicalize > schedule");
    EXPECT_EQ(DriverConfig::greedy({}, 42).describe(),
              "canonicalize > greedy-trs(steps=42) > schedule");
}

// ---- key-select pass ------------------------------------------------

TEST(CompilerDriverTest, KeySelectPassPopulatesPlan)
{
    const trs::Ruleset ruleset = trs::buildChehabRuleset();
    DriverConfig config = DriverConfig::noOpt();
    config.passes.push_back("key-select");
    config.key_budget = 3;

    const ir::ExprPtr source = ir::parse(
        "(VecAdd (<< (Vec a b c d e f g h) 3)"
        "        (<< (Vec a b c d e f g h) 5))");
    const Compiled compiled = CompilerDriver(&ruleset).compile(source,
                                                              config);
    ASSERT_TRUE(compiled.key_planned);
    EXPECT_LE(static_cast<int>(compiled.key_plan.keys.size()), 3);
    // Every rotation step the program uses has a decomposition.
    for (int step : compiled.program.rotationSteps()) {
        EXPECT_TRUE(compiled.key_plan.decomposition.count(step)) << step;
    }
    ASSERT_EQ(compiled.stats.passes.size(), 3u);
    EXPECT_EQ(compiled.stats.passes.back().name, "key-select");
}

TEST(CompilerDriverTest, KeySelectWithoutScheduleThrows)
{
    DriverConfig config;
    config.passes = {"canonicalize", "key-select"};
    EXPECT_THROW(
        CompilerDriver().compile(ir::parse("(<< (Vec a b) 1)"), config),
        CompileError);
}

TEST(CompilerDriverTest, RlPassWithoutAgentThrows)
{
    try {
        CompilerDriver().compile(ir::parse("(+ a b)"),
                                 DriverConfig::rl());
        FAIL() << "expected CompileError";
    } catch (const CompileError& e) {
        EXPECT_NE(std::string(e.what()).find("RL agent"),
                  std::string::npos);
    }
}

} // namespace
} // namespace chehab::compiler
