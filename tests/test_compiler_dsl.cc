/// \file
/// Embedded DSL tests (§4.1, App. C): staging, operator overloads,
/// vector unrolling, compile-time rotations, helper functions, and the
/// motivating example.
#include <gtest/gtest.h>

#include "compiler/dsl.h"
#include "support/error.h"
#include "ir/analysis.h"
#include "ir/evaluator.h"
#include "ir/parser.h"

namespace chehab::compiler {
namespace {

TEST(DslTest, ScalarStaging)
{
    DslProgram program;
    const Ciphertext x = Ciphertext::input("x");
    const Ciphertext y = Ciphertext::input("y");
    (x * y + x).set_output();
    EXPECT_EQ(program.build()->toString(), "(+ (* x y) x)");
}

TEST(DslTest, MotivatingExample)
{
    // §4.1's example function, verbatim structure.
    DslProgram program;
    Ciphertext v1 = Ciphertext::input("v1"), v2 = Ciphertext::input("v2"),
               v3 = Ciphertext::input("v3"), v4 = Ciphertext::input("v4"),
               v5 = Ciphertext::input("v5"), v6 = Ciphertext::input("v6"),
               v7 = Ciphertext::input("v7"), v8 = Ciphertext::input("v8"),
               v9 = Ciphertext::input("v9"), v10 = Ciphertext::input("v10");
    Ciphertext x = (((v1 * v2) * (v3 * v4)) + ((v3 * v4) * (v5 * v6))) *
                   ((v7 * v8) * (v9 * v10));
    x.set_output();
    const ir::ExprPtr expected = ir::parse(
        "(* (+ (* (* v1 v2) (* v3 v4)) (* (* v3 v4) (* v5 v6)))"
        "   (* (* v7 v8) (* v9 v10)))");
    EXPECT_TRUE(ir::equal(program.build(), expected));
}

TEST(DslTest, VectorInputsUnroll)
{
    DslProgram program;
    const Ciphertext a = Ciphertext::inputVector("a", 3);
    const Ciphertext b = Ciphertext::inputVector("b", 3);
    (a + b).set_output();
    EXPECT_EQ(program.build()->toString(),
              "(Vec (+ a_0 b_0) (+ a_1 b_1) (+ a_2 b_2))");
}

TEST(DslTest, ScalarBroadcastsOverVector)
{
    DslProgram program;
    const Ciphertext x = Ciphertext::inputVector("x", 2);
    const Ciphertext s = Ciphertext::input("s");
    (s * x).set_output();
    EXPECT_EQ(program.build()->toString(),
              "(Vec (* s x_0) (* s x_1))");
}

TEST(DslTest, RotationIsCompileTimeReindexing)
{
    DslProgram program;
    const Ciphertext a = Ciphertext::inputVector("a", 3);
    (a << 1).set_output();
    // No runtime Rotate node: slots are re-indexed (§7.3).
    const ir::ExprPtr built = program.build();
    EXPECT_EQ(built->toString(), "(Vec a_1 a_2 a_0)");
    EXPECT_EQ(ir::countOps(built).rotation, 0);
}

TEST(DslTest, PlaintextOperands)
{
    DslProgram program;
    const Ciphertext x = Ciphertext::input("x");
    const Plaintext w = Plaintext::input("w");
    (w * x + Plaintext(3)).set_output();
    EXPECT_EQ(program.build()->toString(), "(+ (* (pt w) x) 3)");
}

TEST(DslTest, Helpers)
{
    DslProgram program;
    const Ciphertext a = Ciphertext::inputVector("a", 4);
    reduce_add(square(a)).set_output();
    const ir::ExprPtr built = program.build();
    // Sum of four squares.
    const ir::OpCounts counts = ir::countOps(built);
    EXPECT_EQ(counts.square, 4);
    EXPECT_EQ(counts.ct_add, 3);
}

TEST(DslTest, MultipleOutputsBecomeVec)
{
    DslProgram program;
    const Ciphertext x = Ciphertext::input("x");
    const Ciphertext y = Ciphertext::input("y");
    (x + y).set_output();
    (x * y).set_output();
    EXPECT_EQ(program.build()->toString(), "(Vec (+ x y) (* x y))");
}

TEST(DslTest, AddManyMulMany)
{
    DslProgram program;
    std::vector<Ciphertext> values = {Ciphertext::input("a"),
                                      Ciphertext::input("b"),
                                      Ciphertext::input("c")};
    (add_many(values) + mul_many(values)).set_output();
    const ir::ExprPtr built = program.build();
    EXPECT_TRUE(ir::equivalentOn(
        ir::parse("(+ (+ (+ a b) c) (* (* a b) c))"), built, 8));
}

TEST(DslTest, NoOutputsThrows)
{
    DslProgram program;
    const Ciphertext x = Ciphertext::input("x");
    (void)x;
    EXPECT_THROW(program.build(), chehab::CompileError);
}

} // namespace
} // namespace chehab::compiler
