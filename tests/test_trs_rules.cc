/// \file
/// Behavioural tests for the CHEHAB rule set: individual rule firing,
/// location-indexed application, the motivating example of §2, and the
/// composite rotation rules of Appendix E.
#include <gtest/gtest.h>

#include "ir/analysis.h"
#include "ir/evaluator.h"
#include "ir/parser.h"
#include "trs/ruleset.h"

namespace chehab::trs {
namespace {

using ir::equal;
using ir::ExprPtr;
using ir::parse;

class RulesetTest : public ::testing::Test
{
  protected:
    static const Ruleset&
    ruleset()
    {
        static const Ruleset rs = buildChehabRuleset();
        return rs;
    }

    static const RewriteRule&
    rule(const std::string& name)
    {
        const int index = ruleset().indexOf(name);
        EXPECT_GE(index, 0) << "unknown rule " << name;
        return ruleset()[static_cast<std::size_t>(index)];
    }

    /// Apply a named rule at its first match and return the result text.
    static std::string
    apply(const std::string& rule_name, const std::string& program)
    {
        const ExprPtr result = rule(rule_name).applyAt(parse(program), 0);
        return result ? result->toString() : "<no match>";
    }
};

TEST_F(RulesetTest, HasExactly84Rules)
{
    EXPECT_EQ(ruleset().size(), 84u);
}

TEST_F(RulesetTest, RuleNamesUnique)
{
    for (std::size_t i = 0; i < ruleset().size(); ++i) {
        EXPECT_EQ(ruleset().indexOf(ruleset()[i].name()),
                  static_cast<int>(i));
    }
}

TEST_F(RulesetTest, Commutativity)
{
    EXPECT_EQ(apply("mul-comm", "(* a b)"), "(* b a)");
    EXPECT_EQ(apply("add-comm", "(+ a b)"), "(+ b a)");
}

TEST_F(RulesetTest, Factorization)
{
    EXPECT_EQ(apply("comm-factor-ll", "(+ (* a b) (* a c))"),
              "(* a (+ b c))");
    EXPECT_EQ(apply("comm-factor-rr", "(+ (* b a) (* c a))"),
              "(* (+ b c) a)");
    EXPECT_EQ(apply("sub-factor", "(- (* a b) (* a c))"), "(* a (- b c))");
}

TEST_F(RulesetTest, Identities)
{
    EXPECT_EQ(apply("add-identity-r", "(+ x 0)"), "x");
    EXPECT_EQ(apply("mul-identity-r", "(* x 1)"), "x");
    EXPECT_EQ(apply("mul-zero-r", "(* x 0)"), "0");
    EXPECT_EQ(apply("sub-self", "(- x x)"), "0");
    EXPECT_EQ(apply("neg-neg", "(- (- x))"), "x");
}

TEST_F(RulesetTest, ConstFold)
{
    EXPECT_EQ(apply("const-fold", "(+ 3 4)"), "7");
    EXPECT_EQ(apply("const-fold", "(* 3 4)"), "12");
    EXPECT_EQ(apply("const-fold", "(- 5)"), "-5");
    EXPECT_EQ(apply("const-fold", "(+ x 4)"), "<no match>");
}

TEST_F(RulesetTest, PlaintextConsolidation)
{
    EXPECT_EQ(apply("pt-consolidate-mul", "(* (pt a) (* (pt b) x))"),
              "(* (* (pt a) (pt b)) x)");
    // All-plain expressions are vetoed by the guard.
    EXPECT_EQ(apply("pt-consolidate-mul", "(* (pt a) (* (pt b) (pt c)))"),
              "<no match>");
}

TEST_F(RulesetTest, IsomorphicVectorization)
{
    EXPECT_EQ(apply("add-vectorize-2", "(Vec (+ a b) (+ c d))"),
              "(VecAdd (Vec a c) (Vec b d))");
    EXPECT_EQ(apply("mul-vectorize-2", "(Vec (* a b) (* c d))"),
              "(VecMul (Vec a c) (Vec b d))");
    EXPECT_EQ(apply("sub-vectorize-3", "(Vec (- a b) (- c d) (- e f))"),
              "(VecSub (Vec a c e) (Vec b d f))");
    EXPECT_EQ(apply("neg-vectorize-2", "(Vec (- a) (- b))"),
              "(VecNeg (Vec a b))");
}

TEST_F(RulesetTest, NonIsomorphicPacking)
{
    // The Appendix E example: mixed * and - children.
    EXPECT_EQ(apply("pack-mul", "(Vec (* a b) (* c d) (- f g))"),
              "(VecMul (Vec a c (- f g)) (Vec b d 1))");
    EXPECT_EQ(apply("pack-add", "(Vec (+ a b) x (+ c d))"),
              "(VecAdd (Vec a x c) (Vec b 0 d))");
    // Fewer than two matching children: no match.
    EXPECT_EQ(apply("pack-mul", "(Vec (* a b) (+ c d))"), "<no match>");
}

TEST_F(RulesetTest, PackNegMixedUsesMask)
{
    EXPECT_EQ(apply("pack-neg", "(Vec (- a) b (- c))"),
              "(VecMul (Vec a b c) (Vec -1 1 -1))");
}

TEST_F(RulesetTest, RotationAlgebra)
{
    EXPECT_EQ(apply("rotate-compose", "(<< (<< (Vec a b c d) 1) 2)"),
              "(<< (Vec a b c d) 3)");
    EXPECT_EQ(apply("rotate-zero", "(<< (Vec a b) 0)"), "(Vec a b)");
    EXPECT_EQ(apply("rotate-hoist-add",
                    "(VecAdd (<< (Vec a b) 1) (<< (Vec c d) 1))"),
              "(<< (VecAdd (Vec a b) (Vec c d)) 1)");
    // Different steps: hoisting is not valid.
    EXPECT_EQ(apply("rotate-hoist-add",
                    "(VecAdd (<< (Vec a b) 1) (<< (Vec c d) 2))"),
              "<no match>");
}

TEST_F(RulesetTest, RotateOfVecFoldsIntoPacking)
{
    EXPECT_EQ(apply("rotate-of-vec", "(<< (Vec a b c) 1)"), "(Vec b c a)");
    // Computed children cannot be relaid out for free.
    EXPECT_EQ(apply("rotate-of-vec", "(<< (Vec (+ a b) c d) 1)"),
              "<no match>");
}

TEST_F(RulesetTest, ReduceSumOfProductsBuildsRotateLadder)
{
    const ExprPtr program =
        parse("(+ (+ (* a0 b0) (* a1 b1)) (+ (* a2 b2) (* a3 b3)))");
    const ExprPtr result = rule("reduce-sum-of-products").applyAt(program, 0);
    ASSERT_NE(result, nullptr);
    const ir::OpCounts counts = ir::countOps(result);
    EXPECT_EQ(counts.ct_ct_mul, 1);   // One packed VecMul.
    EXPECT_EQ(counts.rotation, 2);    // log2(4) rotations.
    EXPECT_EQ(counts.ct_add, 2);
    EXPECT_TRUE(ir::equivalentOn(program, result, 8));
}

TEST_F(RulesetTest, ReduceRulesAreRootOnly)
{
    EXPECT_TRUE(rule("reduce-sum").rootOnly());
    EXPECT_TRUE(rule("reduce-sum-of-products").rootOnly());
    // Embedded in a larger expression, the widening rewrite must not fire.
    const ExprPtr program =
        parse("(* z (+ (* a b) (* c d)))");
    EXPECT_TRUE(rule("reduce-sum-of-products").findMatches(program).empty());
}

TEST_F(RulesetTest, VecReduceSumOfProductsInterleaves)
{
    // The Appendix E composite rule.
    const ExprPtr program =
        parse("(Vec (+ (* a b) (* c d)) (+ (* e f) (* g h)))");
    const ExprPtr result =
        rule("vec-reduce-sum-of-products").applyAt(program, 0);
    ASSERT_NE(result, nullptr);
    const ir::OpCounts counts = ir::countOps(result);
    EXPECT_EQ(counts.ct_ct_mul, 1);
    EXPECT_EQ(counts.rotation, 1);
    EXPECT_EQ(counts.ct_add, 1);
    EXPECT_TRUE(ir::equivalentOn(program, result, 8));
}

TEST_F(RulesetTest, BalanceReducesDepth)
{
    const ExprPtr chain = parse("(* a (* b (* c (* d (* e f)))))");
    const ExprPtr balanced = rule("balance-mul").applyAt(chain, 0);
    ASSERT_NE(balanced, nullptr);
    EXPECT_LT(ir::multiplicativeDepth(balanced),
              ir::multiplicativeDepth(chain));
    EXPECT_TRUE(ir::equivalentOn(chain, balanced, 8));
    // Already balanced trees do not match (no infinite loop).
    EXPECT_EQ(rule("balance-mul").applyAt(balanced, 0), nullptr);
}

TEST_F(RulesetTest, DevectorizeInvertsPacking)
{
    EXPECT_EQ(apply("devectorize-add", "(VecAdd (Vec a c) (Vec b d))"),
              "(Vec (+ a b) (+ c d))");
}

TEST_F(RulesetTest, LocationOrdinalSelectsMatch)
{
    // Two independent factorization sites.
    const ExprPtr program = parse(
        "(Vec (+ (* a b) (* a c)) (+ (* x y) (* x z)))");
    const RewriteRule& r = rule("comm-factor-ll");
    const std::vector<int> matches = r.findMatches(program);
    ASSERT_EQ(matches.size(), 2u);
    const ExprPtr first = r.applyAt(program, 0);
    const ExprPtr second = r.applyAt(program, 1);
    EXPECT_EQ(first->toString(),
              "(Vec (* a (+ b c)) (+ (* x y) (* x z)))");
    EXPECT_EQ(second->toString(),
              "(Vec (+ (* a b) (* a c)) (* x (+ y z)))");
    // Out-of-range ordinal returns null.
    EXPECT_EQ(r.applyAt(program, 2), nullptr);
}

TEST_F(RulesetTest, MotivatingExampleSequence)
{
    // §2: apply R1 (mul commutativity) then R2 (comm factor) to Eq. 1 to
    // reach Eq. 2.
    const ExprPtr eq1 = parse(
        "(* (+ (* (* v1 v2) (* v3 v4)) (* (* v3 v4) (* v5 v6)))"
        "   (* (* v7 v8) (* v9 v10)))");
    // R1 at the first product of the left sum: (* (v1 v2) (v3 v4)) =>
    // (* (v3 v4) (v1 v2)).
    const RewriteRule& r1 = rule("mul-comm");
    const std::vector<int> locs = r1.findMatches(eq1);
    ASSERT_FALSE(locs.empty());
    // Find the ordinal whose site is exactly (* (* v1 v2) (* v3 v4)).
    int ordinal = -1;
    for (std::size_t i = 0; i < locs.size(); ++i) {
        if (ir::subtreeAt(eq1, locs[i])->toString() ==
            "(* (* v1 v2) (* v3 v4))") {
            ordinal = static_cast<int>(i);
        }
    }
    ASSERT_GE(ordinal, 0);
    const ExprPtr after_r1 = r1.applyAt(eq1, ordinal);
    const ExprPtr eq2 = rule("comm-factor-ll").applyAt(after_r1, 0);
    ASSERT_NE(eq2, nullptr);
    EXPECT_EQ(eq2->toString(),
              "(* (* (* v3 v4) (+ (* v1 v2) (* v5 v6)))"
              " (* (* v7 v8) (* v9 v10)))");
    EXPECT_TRUE(ir::equivalentOn(eq1, eq2, 8));
}

TEST_F(RulesetTest, VecMulIdentityVector)
{
    EXPECT_EQ(apply("vecmul-identity", "(VecMul (Vec a b) (Vec 1 1))"),
              "(Vec a b)");
    EXPECT_EQ(apply("vecadd-identity", "(VecAdd (Vec 0 0) (Vec a b))"),
              "(Vec a b)");
}

TEST_F(RulesetTest, CanonicalRotationExposesSharedPacking)
{
    const ExprPtr v = parse("(Vec c a b)");
    const ExprPtr result = rule("vec-canonical-rotation").applyAt(v, 0);
    ASSERT_NE(result, nullptr);
    EXPECT_EQ(result->op(), ir::Op::Rotate);
    EXPECT_TRUE(ir::equivalentOn(v, result, 8));
    // Already-canonical vectors do not match.
    const ExprPtr canonical = result->child(0);
    EXPECT_EQ(rule("vec-canonical-rotation").applyAt(canonical, 0), nullptr);
}

} // namespace
} // namespace chehab::trs
