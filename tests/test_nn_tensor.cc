/// \file
/// Autograd correctness: finite-difference gradient checks on every
/// differentiable operation, plus shape/value unit tests.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/tensor.h"
#include "support/rng.h"

namespace chehab::nn {
namespace {

/// Generic finite-difference check: builds loss(inputs) -> scalar,
/// compares analytic grads of each input against central differences.
void
checkGradients(std::vector<Tensor> inputs,
               const std::function<Tensor(const std::vector<Tensor>&)>& loss,
               float tolerance = 2e-2f)
{
    Tensor out = loss(inputs);
    ASSERT_EQ(out.size(), 1);
    for (Tensor& t : inputs) t.zeroGrad();
    out = loss(inputs);
    out.backward();

    const float eps = 1e-3f;
    for (std::size_t which = 0; which < inputs.size(); ++which) {
        Tensor& t = inputs[which];
        for (int i = 0; i < t.size(); ++i) {
            const float saved = t.mutableData()[static_cast<std::size_t>(i)];
            t.mutableData()[static_cast<std::size_t>(i)] = saved + eps;
            const float up = loss(inputs).item();
            t.mutableData()[static_cast<std::size_t>(i)] = saved - eps;
            const float down = loss(inputs).item();
            t.mutableData()[static_cast<std::size_t>(i)] = saved;
            const float numeric = (up - down) / (2.0f * eps);
            const float analytic = t.grad()[static_cast<std::size_t>(i)];
            EXPECT_NEAR(analytic, numeric,
                        tolerance * std::max(1.0f, std::fabs(numeric)))
                << "input " << which << " element " << i;
        }
    }
}

Tensor
randomTensor(int rows, int cols, std::uint64_t seed)
{
    Rng rng(seed);
    return Tensor::randn(rows, cols, rng, 0.7f, true);
}

TEST(TensorTest, ZerosAndFromData)
{
    const Tensor z = Tensor::zeros(2, 3);
    EXPECT_EQ(z.rows(), 2);
    EXPECT_EQ(z.cols(), 3);
    for (float v : z.data()) EXPECT_EQ(v, 0.0f);

    const Tensor d = Tensor::fromData(2, 2, {1, 2, 3, 4});
    EXPECT_EQ(d.at(0, 1), 2.0f);
    EXPECT_EQ(d.at(1, 0), 3.0f);
}

TEST(TensorTest, MatmulValues)
{
    const Tensor a = Tensor::fromData(2, 2, {1, 2, 3, 4});
    const Tensor b = Tensor::fromData(2, 2, {5, 6, 7, 8});
    const Tensor c = matmul(a, b);
    EXPECT_FLOAT_EQ(c.at(0, 0), 19.0f);
    EXPECT_FLOAT_EQ(c.at(0, 1), 22.0f);
    EXPECT_FLOAT_EQ(c.at(1, 0), 43.0f);
    EXPECT_FLOAT_EQ(c.at(1, 1), 50.0f);
}

TEST(TensorTest, SoftmaxRowsSumToOne)
{
    const Tensor s = softmaxRows(randomTensor(3, 5, 1));
    for (int i = 0; i < 3; ++i) {
        float total = 0.0f;
        for (int j = 0; j < 5; ++j) total += s.at(i, j);
        EXPECT_NEAR(total, 1.0f, 1e-5f);
    }
}

TEST(TensorTest, LogSoftmaxMatchesSoftmax)
{
    const Tensor x = randomTensor(2, 4, 2);
    const Tensor log_p = logSoftmaxRows(x);
    const Tensor p = softmaxRows(x);
    for (int i = 0; i < x.size(); ++i) {
        EXPECT_NEAR(std::exp(log_p.data()[static_cast<std::size_t>(i)]),
                    p.data()[static_cast<std::size_t>(i)], 1e-5f);
    }
}

TEST(GradCheck, Matmul)
{
    checkGradients({randomTensor(2, 3, 10), randomTensor(3, 2, 11)},
                   [](const std::vector<Tensor>& in) {
                       return sumAll(matmul(in[0], in[1]));
                   });
}

TEST(GradCheck, AddAndScale)
{
    checkGradients({randomTensor(2, 2, 12), randomTensor(2, 2, 13)},
                   [](const std::vector<Tensor>& in) {
                       return sumAll(scale(add(in[0], in[1]), 1.5f));
                   });
}

TEST(GradCheck, MulElem)
{
    checkGradients({randomTensor(2, 3, 14), randomTensor(2, 3, 15)},
                   [](const std::vector<Tensor>& in) {
                       return meanAll(mulElem(in[0], in[1]));
                   });
}

TEST(GradCheck, RowBroadcast)
{
    checkGradients({randomTensor(3, 4, 16), randomTensor(1, 4, 17)},
                   [](const std::vector<Tensor>& in) {
                       return sumAll(addRowBroadcast(in[0], in[1]));
                   });
}

TEST(GradCheck, Activations)
{
    checkGradients({randomTensor(2, 4, 18)},
                   [](const std::vector<Tensor>& in) {
                       return sumAll(mulElem(tanhT(in[0]), sigmoid(in[0])));
                   });
}

TEST(GradCheck, ReluAwayFromKink)
{
    Tensor x = Tensor::fromData(1, 4, {0.5f, -0.7f, 1.2f, -0.3f}, true);
    checkGradients({x}, [](const std::vector<Tensor>& in) {
        return sumAll(relu(in[0]));
    });
}

TEST(GradCheck, SoftmaxWeightedSum)
{
    // Weighted sum makes the softmax Jacobian non-trivial.
    const Tensor weights = Tensor::fromData(1, 4, {0.3f, -1.0f, 2.0f, 0.1f});
    checkGradients({randomTensor(1, 4, 19)},
                   [weights](const std::vector<Tensor>& in) {
                       return sumAll(mulElem(softmaxRows(in[0]), weights));
                   });
}

TEST(GradCheck, LogSoftmaxPick)
{
    checkGradients({randomTensor(1, 5, 20)},
                   [](const std::vector<Tensor>& in) {
                       return pick(logSoftmaxRows(in[0]), 0, 2);
                   });
}

TEST(GradCheck, LayerNorm)
{
    checkGradients({randomTensor(2, 6, 21), randomTensor(1, 6, 22),
                    randomTensor(1, 6, 23)},
                   [](const std::vector<Tensor>& in) {
                       const Tensor target = Tensor::fromData(
                           2, 6, std::vector<float>(12, 0.3f));
                       const Tensor diff = sub(
                           layerNormRows(in[0], in[1], in[2]), target);
                       return meanAll(mulElem(diff, diff));
                   },
                   5e-2f);
}

TEST(GradCheck, TransposeAndSlice)
{
    checkGradients({randomTensor(3, 4, 24)},
                   [](const std::vector<Tensor>& in) {
                       const Tensor t = transpose(in[0]);
                       return sumAll(sliceCols(t, 1, 3));
                   });
}

TEST(GradCheck, ConcatAndSliceRow)
{
    checkGradients({randomTensor(2, 3, 25), randomTensor(2, 2, 26)},
                   [](const std::vector<Tensor>& in) {
                       const Tensor c = concatCols(in[0], in[1]);
                       return sumAll(sliceRow(c, 1));
                   });
}

TEST(GradCheck, ConcatRows)
{
    checkGradients({randomTensor(2, 3, 27), randomTensor(1, 3, 28)},
                   [](const std::vector<Tensor>& in) {
                       return meanAll(concatRows(in[0], in[1]));
                   });
}

TEST(GradCheck, EmbeddingLookup)
{
    checkGradients({randomTensor(5, 3, 29)},
                   [](const std::vector<Tensor>& in) {
                       return sumAll(embeddingLookup(in[0], {1, 3, 1}));
                   });
}

TEST(GradCheck, MaskedMeanRows)
{
    checkGradients({randomTensor(4, 3, 30)},
                   [](const std::vector<Tensor>& in) {
                       return sumAll(
                           maskedMeanRows(in[0], {1.0f, 0.0f, 1.0f, 1.0f}));
                   });
}

TEST(TensorTest, BackwardAccumulatesThroughSharedNodes)
{
    // y = x * x via shared handle: dy/dx = 2x.
    Tensor x = Tensor::fromData(1, 1, {3.0f}, true);
    Tensor y = sumAll(mulElem(x, x));
    x.zeroGrad();
    y = sumAll(mulElem(x, x));
    y.backward();
    EXPECT_NEAR(x.grad()[0], 6.0f, 1e-5f);
}

TEST(TensorTest, MaskBlocksAttentionColumn)
{
    const Tensor scores = Tensor::fromData(1, 3, {1.0f, 1.0f, 1.0f});
    const Tensor masked =
        softmaxRows(addConstMask(scores, {0.0f, -1e9f, 0.0f}));
    EXPECT_NEAR(masked.at(0, 1), 0.0f, 1e-6f);
    EXPECT_NEAR(masked.at(0, 0), 0.5f, 1e-5f);
}

} // namespace
} // namespace chehab::nn
