/// \file
/// Unit tests for the telemetry layer: histogram bucket math (edges,
/// monotonicity, bound round-trips), percentile-vs-sorted-reference
/// bucket agreement, merge equivalence, recorder span/instant
/// recording across threads, events() ordering, the per-shard drop
/// cap, the disabled no-op path, and Chrome trace export sanity.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "support/telemetry.h"

namespace chehab::telemetry {
namespace {

using Hist = LatencyHistogram;

TEST(LatencyHistogramTest, BucketIndexEdges)
{
    // Underflow: zero, negatives, NaN, and anything below 1 us.
    EXPECT_EQ(Hist::bucketIndex(0.0), 0);
    EXPECT_EQ(Hist::bucketIndex(-1.0), 0);
    EXPECT_EQ(Hist::bucketIndex(std::numeric_limits<double>::quiet_NaN()),
              0);
    EXPECT_EQ(Hist::bucketIndex(Hist::kMinSeconds * 0.999), 0);
    // The first regular bucket starts exactly at kMinSeconds.
    EXPECT_EQ(Hist::bucketIndex(Hist::kMinSeconds), 1);
    // Overflow: beyond the last octave, and infinity.
    const double beyond =
        Hist::kMinSeconds * std::ldexp(1.0, Hist::kOctaves);
    EXPECT_EQ(Hist::bucketIndex(beyond * 2.0), Hist::kBucketCount - 1);
    EXPECT_EQ(Hist::bucketIndex(std::numeric_limits<double>::infinity()),
              Hist::kBucketCount - 1);
}

TEST(LatencyHistogramTest, BucketIndexMonotone)
{
    int prev = 0;
    for (double s = 1e-8; s < 1e3; s *= 1.07) {
        const int index = Hist::bucketIndex(s);
        EXPECT_GE(index, prev) << "at " << s << " s";
        EXPECT_GE(index, 0);
        EXPECT_LT(index, Hist::kBucketCount);
        prev = index;
    }
}

TEST(LatencyHistogramTest, BucketBoundsRoundTrip)
{
    for (int index = 0; index < Hist::kBucketCount; ++index) {
        const double lo = Hist::bucketLowerBound(index);
        const double hi = Hist::bucketUpperBound(index);
        ASSERT_LT(lo, hi) << "bucket " << index;
        // The lower bound itself belongs to the bucket...
        if (index > 0) {
            EXPECT_EQ(Hist::bucketIndex(lo), index) << "bucket " << index;
        }
        // ...and so does an interior point (overflow has no interior
        // midpoint below +inf, so probe just past the lower bound).
        const double interior = std::isinf(hi) ? lo * 2.0
                                               : lo + (hi - lo) * 0.5;
        if (index > 0) {
            EXPECT_EQ(Hist::bucketIndex(interior), index)
                << "bucket " << index;
        }
        // Consecutive buckets tile [0, inf): this bucket's upper bound
        // is the next one's lower bound.
        if (index + 1 < Hist::kBucketCount) {
            EXPECT_DOUBLE_EQ(hi, Hist::bucketLowerBound(index + 1));
        }
    }
}

TEST(LatencyHistogramTest, RecordAccounting)
{
    Hist hist;
    EXPECT_EQ(hist.count(), 0u);
    EXPECT_EQ(hist.percentile(50.0), 0.0);
    EXPECT_EQ(hist.min(), 0.0);
    EXPECT_EQ(hist.max(), 0.0);

    hist.record(0.002);
    hist.record(0.010);
    hist.record(0.0005);
    EXPECT_EQ(hist.count(), 3u);
    EXPECT_DOUBLE_EQ(hist.sum(), 0.0125);
    EXPECT_DOUBLE_EQ(hist.mean(), 0.0125 / 3.0);
    EXPECT_DOUBLE_EQ(hist.min(), 0.0005);
    EXPECT_DOUBLE_EQ(hist.max(), 0.010);

    std::uint64_t total = 0;
    for (std::uint64_t bucket : hist.buckets()) total += bucket;
    EXPECT_EQ(total, 3u);
}

TEST(LatencyHistogramTest, PercentileMatchesSortedReferenceBucket)
{
    // The documented guarantee: percentile() returns a value in the
    // same bucket as the exact nearest-rank percentile of the raw
    // sorted samples. Exercise it over a log-uniform latency spread.
    std::mt19937 rng(1234);
    std::uniform_real_distribution<double> exponent(-6.0, 1.0);
    std::vector<double> samples;
    Hist hist;
    for (int i = 0; i < 5000; ++i) {
        const double s = std::pow(10.0, exponent(rng));
        samples.push_back(s);
        hist.record(s);
    }
    std::sort(samples.begin(), samples.end());
    for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9}) {
        const std::size_t rank = static_cast<std::size_t>(
            std::ceil(p / 100.0 * static_cast<double>(samples.size())));
        const double exact =
            samples[std::min(rank == 0 ? 0 : rank - 1,
                             samples.size() - 1)];
        const double approx = hist.percentile(p);
        EXPECT_EQ(Hist::bucketIndex(approx), Hist::bucketIndex(exact))
            << "p" << p << ": approx " << approx << " vs exact " << exact;
    }
    // Degenerate percentiles stay in range.
    EXPECT_GE(hist.percentile(0.0), 0.0);
    EXPECT_LE(hist.percentile(100.0), hist.max() * 1.2);
}

TEST(LatencyHistogramTest, MergeEqualsCombinedStream)
{
    std::mt19937 rng(99);
    std::uniform_real_distribution<double> exponent(-7.0, 2.0);
    Hist a;
    Hist b;
    Hist combined;
    for (int i = 0; i < 2000; ++i) {
        const double s = std::pow(10.0, exponent(rng));
        (i % 3 ? a : b).record(s);
        combined.record(s);
    }
    Hist merged = a;
    merged.merge(b);
    EXPECT_EQ(merged.count(), combined.count());
    // Sums accumulate in a different order, so compare with a relative
    // tolerance instead of bit equality.
    EXPECT_NEAR(merged.sum(), combined.sum(),
                1e-9 * std::abs(combined.sum()));
    EXPECT_DOUBLE_EQ(merged.min(), combined.min());
    EXPECT_DOUBLE_EQ(merged.max(), combined.max());
    EXPECT_EQ(merged.buckets(), combined.buckets());
    for (double p : {50.0, 90.0, 99.0}) {
        EXPECT_DOUBLE_EQ(merged.percentile(p), combined.percentile(p));
    }
}

TEST(TraceRecorderTest, DisabledRecorderIsNoOp)
{
    TraceRecorder recorder(/*enabled=*/false);
    EXPECT_FALSE(recorder.enabled());
    recorder.observe(Phase::Execute, 0.5);
    recorder.span("dispatch", 0, 10, 20, 7, {{"meas_s", 0.5}});
    recorder.instant("window_flush", TraceRecorder::kFlusherTid);
    { ScopedSpan span(recorder, "compile", 1, 3); }

    const TelemetrySnapshot snapshot = recorder.snapshot();
    EXPECT_FALSE(snapshot.enabled);
    EXPECT_EQ(snapshot.events, 0u);
    EXPECT_EQ(snapshot.dropped, 0u);
    EXPECT_EQ(snapshot.phase(Phase::Execute).count(), 0u);
    EXPECT_TRUE(recorder.events().empty());
}

TEST(TraceRecorderTest, SpanAndInstantRecording)
{
    TraceRecorder recorder(/*enabled=*/true);
    recorder.span("dispatch", 2, 100, 400, 11,
                  {{"qwait_s", 0.001}, {"meas_s", 0.0003}});
    recorder.instant("run_cache_hit", TraceRecorder::kClientTidBase, 11);
    recorder.observe(Phase::QueueWait, 0.001);

    const std::vector<TraceEvent> events = recorder.events();
    ASSERT_EQ(events.size(), 2u);
    // events() sorts by start time; the span started at 100 ns, the
    // instant at "now" (far later against the same epoch).
    EXPECT_STREQ(events[0].name, "dispatch");
    EXPECT_EQ(events[0].request_id, 11u);
    EXPECT_EQ(events[0].tid, 2);
    EXPECT_EQ(events[0].start_ns, 100);
    EXPECT_EQ(events[0].end_ns, 400);
    EXPECT_FALSE(events[0].isInstant());
    ASSERT_EQ(events[0].narg, 2);
    EXPECT_STREQ(events[0].arg_keys[0], "qwait_s");
    EXPECT_DOUBLE_EQ(events[0].arg_vals[0], 0.001);
    EXPECT_STREQ(events[1].name, "run_cache_hit");
    EXPECT_TRUE(events[1].isInstant());

    const TelemetrySnapshot snapshot = recorder.snapshot();
    EXPECT_TRUE(snapshot.enabled);
    EXPECT_EQ(snapshot.events, 2u);
    EXPECT_EQ(snapshot.phase(Phase::QueueWait).count(), 1u);
}

TEST(TraceRecorderTest, ScopedSpanRecordsOnDestruction)
{
    TraceRecorder recorder(/*enabled=*/true);
    {
        ScopedSpan span(recorder, "execute", 3, 42);
        span.arg("lanes", 4.0);
    }
    const std::vector<TraceEvent> events = recorder.events();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_STREQ(events[0].name, "execute");
    EXPECT_EQ(events[0].tid, 3);
    EXPECT_EQ(events[0].request_id, 42u);
    EXPECT_GE(events[0].end_ns, events[0].start_ns);
    ASSERT_EQ(events[0].narg, 1);
    EXPECT_STREQ(events[0].arg_keys[0], "lanes");
    EXPECT_DOUBLE_EQ(events[0].arg_vals[0], 4.0);
}

TEST(TraceRecorderTest, ConcurrentRecordingAndOrdering)
{
    TraceRecorder recorder(/*enabled=*/true);
    constexpr int kThreads = 8;
    constexpr int kSpansPerThread = 200;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&recorder, t] {
            for (int i = 0; i < kSpansPerThread; ++i) {
                const std::int64_t start = recorder.nowNs();
                recorder.observe(Phase::Execute, 1e-5);
                recorder.span("execute", t, start, recorder.nowNs(),
                              static_cast<std::uint64_t>(t * 1000 + i));
            }
        });
    }
    for (std::thread& thread : threads) thread.join();

    const std::vector<TraceEvent> events = recorder.events();
    ASSERT_EQ(events.size(),
              static_cast<std::size_t>(kThreads * kSpansPerThread));
    for (std::size_t i = 1; i < events.size(); ++i) {
        EXPECT_LE(events[i - 1].start_ns, events[i].start_ns);
    }
    const TelemetrySnapshot snapshot = recorder.snapshot();
    EXPECT_EQ(snapshot.events,
              static_cast<std::uint64_t>(kThreads * kSpansPerThread));
    EXPECT_EQ(snapshot.dropped, 0u);
    EXPECT_EQ(snapshot.phase(Phase::Execute).count(),
              static_cast<std::uint64_t>(kThreads * kSpansPerThread));
}

TEST(TraceRecorderTest, PerShardCapCountsDrops)
{
    // A single thread maps to one shard, so a tiny cap overflows fast.
    TraceRecorder recorder(/*enabled=*/true,
                           /*max_events_per_shard=*/4);
    for (int i = 0; i < 10; ++i) {
        recorder.span("dispatch", 0, i * 10, i * 10 + 5);
    }
    const TelemetrySnapshot snapshot = recorder.snapshot();
    EXPECT_EQ(snapshot.events, 4u);
    EXPECT_EQ(snapshot.dropped, 6u);
    EXPECT_EQ(recorder.events().size(), 4u);
}

TEST(TraceRecorderTest, ChromeTraceExportShape)
{
    TraceRecorder recorder(/*enabled=*/true);
    recorder.span("dispatch", 0, 1000, 9000, 5, {{"meas_s", 8e-6}});
    recorder.span("execute", 0, 2000, 8000, 5);
    recorder.instant("window_flush", TraceRecorder::kFlusherTid);

    std::ostringstream out;
    recorder.writeChromeTrace(out);
    const std::string json = out.str();
    // Top level is an object with the traceEvents array (what Perfetto
    // and chrome://tracing expect), not a bare array.
    EXPECT_EQ(json.find('{'), 0u);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
    // Track metadata + the recorded events by name.
    EXPECT_NE(json.find("thread_name"), std::string::npos);
    EXPECT_NE(json.find("\"dispatch\""), std::string::npos);
    EXPECT_NE(json.find("\"execute\""), std::string::npos);
    EXPECT_NE(json.find("\"window_flush\""), std::string::npos);
    // Complete spans and instants both present.
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    // Balanced braces — cheap structural sanity without a JSON parser.
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
}

TEST(TraceRecorderTest, PhaseNamesStable)
{
    EXPECT_STREQ(phaseName(Phase::Enqueue), "enqueue");
    EXPECT_STREQ(phaseName(Phase::QueueWait), "queue_wait");
    EXPECT_STREQ(phaseName(Phase::Compile), "compile");
    EXPECT_STREQ(phaseName(Phase::Execute), "execute");
    EXPECT_STREQ(phaseName(Phase::Setup), "setup");
    EXPECT_STREQ(phaseName(Phase::Evaluate), "evaluate");
    EXPECT_STREQ(phaseName(Phase::Decode), "decode");
    EXPECT_STREQ(phaseName(Phase::WindowWait), "window_wait");
}

} // namespace
} // namespace chehab::telemetry
